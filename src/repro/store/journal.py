"""Append-only, CRC32-framed write-ahead journal with typed records.

Frame format (little-endian), one frame per record::

    +---------------+---------------+------------------------+
    | length (u32)  | crc32 (u32)   | payload (length bytes) |
    +---------------+---------------+------------------------+

``payload`` is canonical JSON ``{"t": <type>, "d": {...}}``; ``crc32``
is the reflected IEEE CRC-32 of the payload, computed with the repo's
own :class:`repro.crypto.crc.Crc32` engine (bit-exact with ``zlib``) —
the same primitive the P4Auth data plane uses for its digests.

Records live in numbered segment files ``journal-<base-lsn>.wal``; the
file name carries the LSN (log sequence number) of its first record, so
after a snapshot at LSN *L* every fully-covered segment can be deleted
(:meth:`Journal.compact`) without renumbering anything.  Rotation
(:meth:`Journal.rotate`) fsyncs and closes the active segment, then
creates the next one — a reader always sees whole segments.

Torn final records
------------------
A crash mid-append leaves a torn frame at the tail of the active
segment: a truncated header, a payload shorter than its length field,
or a payload whose CRC disagrees.  :meth:`Journal.open` does **not**
refuse to start — it truncates the segment back to the last valid
frame, counts the loss in ``torn_records`` (and the
``store_journal_torn_records_total`` metric), and appends from there.
A torn record was by definition never acknowledged as durable, so
dropping it is correct; crashing the controller *again* over it would
not be.

Fsync discipline
----------------
``fsync`` policy is one of :data:`FSYNC_POLICIES`:

- ``"always"`` — every append is flushed+fsynced before returning;
- ``"batch"`` — appends buffer; records marked ``durable=True`` (key
  material, sequence-horizon reservations) force a group commit, the
  rest ride along with the next one;
- ``"never"`` — no fsync (benchmark baselines and pure-replay tests).

``durable_lsn`` tracks the last record known to be on stable storage;
``lag`` (``next_lsn - durable_lsn - 1``… exposed as appended-but-not-
synced record count) feeds the ``store_journal_lag_records`` gauge.
:meth:`simulate_crash` models SIGKILL: the active segment is truncated
to the last *synced* byte and the in-memory handle dropped, so recovery
tests exercise exactly the durability the fsync policy bought.
"""

from __future__ import annotations

import json
import os
import struct
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.crypto.crc import Crc32
from repro.store.atomic import fsync_dir, sweep_orphan_tmp

#: Frame header: payload length, payload CRC-32 (both u32 LE).
_FRAME = struct.Struct("<II")

#: Segment file name pattern: the number is the segment's base LSN.
_SEGMENT_FMT = "journal-%012d.wal"
_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".wal"

#: Hard cap on one record's payload — a length field beyond this is
#: treated as corruption, not an allocation request.
MAX_PAYLOAD_BYTES = 1 << 24

FSYNC_POLICIES = ("always", "batch", "never")

#: The typed records the controller journals.  ``key_install`` covers
#: K_seed / K_auth / first K_local; ``key_rollover`` is a local-key
#: version flip on a switch that already had one; ``seq_advance`` is a
#: *reservation* — the controller promises never to use a sequence
#: number at or above ``horizon`` without journaling a new horizon
#: first; ``batch_open``/``batch_close`` bracket a switch's in-flight
#: issue window; ``shard_map`` records fleet ownership;
#: ``epoch_advance`` tracks hierarchical-KMP rollover epochs.
RECORD_TYPES = (
    "key_install",
    "key_rollover",
    "seq_advance",
    "batch_open",
    "batch_close",
    "shard_map",
    "epoch_advance",
)

#: Buckets for the fsync latency histogram (seconds).
FSYNC_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1,
)

_CRC = Crc32()


class JournalCorruption(RuntimeError):
    """Corruption *before* the final record — the journal cannot tell
    which tail is trustworthy, so it refuses rather than guesses."""


@dataclass(frozen=True)
class JournalRecord:
    """One replayable journal entry."""

    lsn: int
    type: str
    data: Dict[str, object]


def _encode(rec_type: str, data: Dict[str, object]) -> bytes:
    payload = json.dumps({"t": rec_type, "d": data}, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), _CRC.compute(payload)) + payload


def _decode_payload(payload: bytes, lsn: int) -> JournalRecord:
    document = json.loads(payload.decode("utf-8"))
    return JournalRecord(lsn=lsn, type=document["t"], data=document["d"])


class Journal:
    """The write-ahead journal over one state directory."""

    def __init__(self, root: str, *, fsync: str = "always",
                 segment_max_bytes: int = 4 << 20,
                 metrics=None, **metric_labels):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if segment_max_bytes < len(_FRAME.pack(0, 0)) + 2:
            raise ValueError("segment_max_bytes is too small for any record")
        self.root = root
        self.fsync_policy = fsync
        self.segment_max_bytes = segment_max_bytes
        #: LSN the next appended record will get.
        self.next_lsn = 0
        #: Highest LSN known to be on stable storage (-1: none yet).
        self.durable_lsn = -1
        #: Records dropped by torn-tail truncation at open time.
        self.torn_records = 0
        #: Observers called with each freshly appended JournalRecord
        #: (the controller-crash fault action hooks here).
        self.on_append: List[Callable[[JournalRecord], None]] = []
        self._handle = None
        self._active_path: Optional[str] = None
        self._active_base = 0
        #: Byte offset within the active segment up to which content is
        #: known fsynced (simulate_crash truncates to this).
        self._synced_bytes = 0
        self._written_bytes = 0
        self._metrics = metrics if metrics is not None \
            and getattr(metrics, "enabled", False) else None
        self._labels = metric_labels
        self._opened = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def open(self) -> List[JournalRecord]:
        """Scan all segments, heal a torn tail, and arm for appends.

        Returns every valid record in LSN order (recovery replays them;
        a fresh journal returns ``[]``).  Also sweeps orphaned ``*.tmp``
        files that a killed snapshot writer may have left in the state
        directory.
        """
        if self._opened:
            raise RuntimeError("journal is already open")
        os.makedirs(self.root, exist_ok=True)
        sweep_orphan_tmp(self.root)
        records: List[JournalRecord] = []
        segments = self._segments()
        for index, (base, path) in enumerate(segments):
            final = index == len(segments) - 1
            seg_records = self._scan_segment(base, path, heal_tail=final)
            if seg_records and records \
                    and seg_records[0].lsn != records[-1].lsn + 1:
                raise JournalCorruption(
                    f"{self.root}: segment LSNs are not contiguous")
            records.extend(seg_records)
        self.next_lsn = records[-1].lsn + 1 if records else 0
        # An empty active segment *ahead* of the record stream is the
        # durable mark of :meth:`skip_to` — recovery clamped the LSN
        # space past a snapshot that covers records this journal never
        # held.  Resume there, never below it.
        if segments and segments[-1][0] > self.next_lsn:
            self.next_lsn = segments[-1][0]
        self.durable_lsn = self.next_lsn - 1
        fresh_segment = not segments
        if segments:
            self._active_base, self._active_path = segments[-1]
        else:
            self._active_base = self.next_lsn
            self._active_path = os.path.join(
                self.root, _SEGMENT_FMT % self._active_base)
        self._handle = open(self._active_path, "ab")
        if fresh_segment and self.fsync_policy != "never":
            fsync_dir(self.root)
        self._written_bytes = self._handle.tell()
        self._synced_bytes = self._written_bytes
        self._opened = True
        return records

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
        self._opened = False

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------

    def append(self, rec_type: str, data: Dict[str, object],
               durable: bool = False) -> JournalRecord:
        """Append one typed record; returns it with its LSN assigned.

        ``durable=True`` marks the record as a must-sync point under
        the ``"batch"`` policy (key material and sequence reservations
        must hit stable storage before the controller acts on them).
        """
        if not self._opened:
            raise RuntimeError("journal is not open")
        if rec_type not in RECORD_TYPES:
            raise ValueError(f"unknown record type {rec_type!r} "
                             f"(expected one of {RECORD_TYPES})")
        frame = _encode(rec_type, data)
        if self._written_bytes + len(frame) > self.segment_max_bytes \
                and self._written_bytes > 0:
            self.rotate()
        record = JournalRecord(lsn=self.next_lsn, type=rec_type,
                               data=dict(data))
        self._handle.write(frame)
        self._written_bytes += len(frame)
        self.next_lsn += 1
        if self.fsync_policy == "always" or \
                (durable and self.fsync_policy == "batch"):
            self.sync()
        if self._metrics is not None:
            self._metrics.counter("store_journal_records_total",
                                  type=rec_type, **self._labels).inc()
            self._metrics.counter("store_journal_bytes_total",
                                  **self._labels).inc(len(frame))
            self._metrics.gauge("store_journal_lag_records",
                                **self._labels).set(self.lag)
        for hook in list(self.on_append):
            hook(record)
        return record

    def sync(self) -> None:
        """Flush + fsync the active segment; advances ``durable_lsn``."""
        if self._handle is None:
            return
        self._handle.flush()
        if self.fsync_policy != "never":
            started = time.perf_counter()
            os.fsync(self._handle.fileno())
            if self._metrics is not None:
                self._metrics.histogram(
                    "store_fsync_seconds", buckets=FSYNC_BUCKETS,
                    **self._labels).observe(time.perf_counter() - started)
        self._synced_bytes = self._written_bytes
        self.durable_lsn = self.next_lsn - 1
        if self._metrics is not None:
            self._metrics.gauge("store_journal_lag_records",
                                **self._labels).set(0)

    @property
    def lag(self) -> int:
        """Appended-but-not-yet-durable record count."""
        return (self.next_lsn - 1) - self.durable_lsn

    @property
    def is_open(self) -> bool:
        return self._opened

    # ------------------------------------------------------------------
    # segment management
    # ------------------------------------------------------------------

    def rotate(self) -> str:
        """Seal the active segment and start the next; returns its path.

        The old segment is fsynced before the new one opens, so a
        reader never observes a sealed segment with a torn tail.
        """
        if not self._opened:
            raise RuntimeError("journal is not open")
        self.sync()
        self._handle.close()
        self._active_base = self.next_lsn
        self._active_path = os.path.join(self.root,
                                         _SEGMENT_FMT % self._active_base)
        self._handle = open(self._active_path, "ab")
        self._written_bytes = 0
        self._synced_bytes = 0
        if self.fsync_policy != "never":
            fsync_dir(self.root)
        return self._active_path

    def skip_to(self, lsn: int) -> None:
        """Clamp ``next_lsn`` forward to ``lsn`` (no-op when not ahead).

        Recovery calls this when a surviving snapshot covers LSNs the
        journal itself lost (e.g. a crash under ``fsync='batch'`` on a
        state dir written before snapshots forced a sync): fresh records
        must never be assigned LSNs the snapshot already covers, or the
        *next* recovery's tail replay would silently skip them.  The
        skip is made durable by sealing the active segment and opening a
        new one whose file name carries the clamped base LSN.
        """
        if not self._opened:
            raise RuntimeError("journal is not open")
        if lsn <= self.next_lsn:
            return
        self.next_lsn = lsn
        self.rotate()
        # Everything below the clamp is covered by the snapshot that
        # forced it; compacting immediately keeps the on-disk segment
        # chain contiguous (a gap before a *non-empty* segment reads as
        # corruption on the next open).
        self.compact(lsn)

    def compact(self, upto_lsn: int) -> int:
        """Delete sealed segments fully covered by a snapshot at
        ``upto_lsn`` (exclusive); returns how many files went away."""
        removed = 0
        segments = self._segments()
        for index, (base, path) in enumerate(segments):
            if path == self._active_path:
                continue
            next_base = segments[index + 1][0] if index + 1 < len(segments) \
                else self.next_lsn
            if next_base <= upto_lsn:
                os.unlink(path)
                removed += 1
        if removed and self.fsync_policy != "never":
            fsync_dir(self.root)
        return removed

    def simulate_crash(self) -> None:
        """Model SIGKILL: drop everything the OS had not fsynced.

        Truncates the active segment to the last synced byte and
        abandons the handle without the close-time sync.  After this
        the journal object is dead; recovery opens a fresh one.
        """
        if self._handle is None:
            return
        self._handle.flush()
        self._handle.close()
        self._handle = None
        with open(self._active_path, "ab") as handle:
            handle.truncate(self._synced_bytes)
        self._opened = False

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def records(self, start_lsn: int = 0) -> Iterator[JournalRecord]:
        """Replay records with ``lsn >= start_lsn`` from disk."""
        if self._handle is not None:
            self._handle.flush()
        for index, (base, path) in enumerate(self._segments()):
            for record in self._scan_segment(base, path, heal_tail=False,
                                             count_torn=False):
                if record.lsn >= start_lsn:
                    yield record

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _segments(self) -> List[Tuple[int, str]]:
        entries: List[Tuple[int, str]] = []
        if not os.path.isdir(self.root):
            return entries
        for name in os.listdir(self.root):
            if not (name.startswith(_SEGMENT_PREFIX)
                    and name.endswith(_SEGMENT_SUFFIX)):
                continue
            digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            try:
                base = int(digits)
            except ValueError:
                continue
            entries.append((base, os.path.join(self.root, name)))
        entries.sort()
        return entries

    def _scan_segment(self, base: int, path: str, heal_tail: bool,
                      count_torn: bool = True) -> List[JournalRecord]:
        """Decode one segment; optionally truncate a torn final frame.

        Corruption anywhere but the final frame of the final segment is
        a :class:`JournalCorruption` — healing there would silently
        drop acknowledged records.
        """
        records: List[JournalRecord] = []
        with open(path, "rb") as handle:
            blob = handle.read()
        offset = 0
        lsn = base
        valid_end = 0
        torn = False
        while offset < len(blob):
            header = blob[offset:offset + _FRAME.size]
            if len(header) < _FRAME.size:
                torn = True
                break
            length, crc = _FRAME.unpack(header)
            if length > MAX_PAYLOAD_BYTES:
                torn = True
                break
            payload = blob[offset + _FRAME.size:offset + _FRAME.size + length]
            if len(payload) < length or _CRC.compute(payload) != crc:
                torn = True
                break
            try:
                records.append(_decode_payload(payload, lsn))
            except (ValueError, KeyError):
                torn = True
                break
            lsn += 1
            offset += _FRAME.size + length
            valid_end = offset
        if torn:
            trailing = len(blob) - valid_end
            if not heal_tail:
                raise JournalCorruption(
                    f"{path}: corrupt frame at offset {valid_end} "
                    f"({trailing} trailing bytes) in a sealed segment")
            if count_torn:
                self.torn_records += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        "store_journal_torn_records_total",
                        **self._labels).inc()
            with open(path, "ab") as handle:
                handle.truncate(valid_end)
        return records


__all__ = [
    "FSYNC_BUCKETS",
    "FSYNC_POLICIES",
    "Journal",
    "JournalCorruption",
    "JournalRecord",
    "MAX_PAYLOAD_BYTES",
    "RECORD_TYPES",
]
