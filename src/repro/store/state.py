"""The durable-state model and its replay semantics.

:class:`StoreState` is the controller state worth surviving a crash:
per-switch key material by version, per-switch sequence *horizons*
(reservations, not last-used values — see the skip-ahead rule in
DESIGN.md), in-flight batch windows, hierarchical-KMP epochs, and the
fleet shard map.

:func:`apply_record` is a **pure** fold of one journal record into a
state — it is the single definition of what each record type means.
The live :class:`~repro.store.recorder.StateRecorder` maintains its
in-memory mirror through this same function, snapshots serialize that
mirror, and recovery replays the journal tail through it again; so
"snapshot + tail replay ≡ full-journal replay" holds by construction,
and the property test in ``tests/store`` checks the disk round-trip
rather than a tautology.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.constants import KEY_VERSIONS

#: The controller's sequence counter wraps at 32 bits.  Journaled
#: horizons are kept *unmasked* (monotone across wraps — the recorder
#: lifts masked values with serial-number arithmetic); this mask is
#: applied only where a 32-bit register or counter needs the value.
SEQ_MASK = 0xFFFFFFFF


@dataclass
class KeyEntry:
    """One switch's journaled key material (controller side)."""

    seed: int = 0
    auth: int = 0
    #: The two local-key version slots, mirroring VersionedKey.
    local_slots: List[int] = field(
        default_factory=lambda: [0] * KEY_VERSIONS)
    local_active: int = 0
    has_local: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "auth": self.auth,
            "local_slots": list(self.local_slots),
            "local_active": self.local_active,
            "has_local": self.has_local,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KeyEntry":
        return cls(
            seed=int(data["seed"]),
            auth=int(data["auth"]),
            local_slots=[int(v) for v in data["local_slots"]],
            local_active=int(data["local_active"]),
            has_local=bool(data["has_local"]),
        )


@dataclass
class StoreState:
    """Everything recovery needs, as plain data."""

    #: switch -> first sequence number NOT yet covered by the journal.
    #: Recovery resumes *at* the horizon — never below it.
    seq_horizons: Dict[str, int] = field(default_factory=dict)
    keys: Dict[str, KeyEntry] = field(default_factory=dict)
    #: switch -> head op of the batch window open at crash time
    #: (``{"reg": ..., "index": ...}``); absent means quiesced.
    open_windows: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: switch -> hierarchical-KMP rollover epoch counter.
    epochs: Dict[str, int] = field(default_factory=dict)
    #: shard name -> ordered switch list.
    shard_map: Dict[str, List[str]] = field(default_factory=dict)
    #: LSN of the last record folded in (-1: none).
    applied_lsn: int = -1

    def key_entry(self, switch: str) -> KeyEntry:
        entry = self.keys.get(switch)
        if entry is None:
            entry = self.keys[switch] = KeyEntry()
        return entry

    def copy(self) -> "StoreState":
        return copy.deepcopy(self)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq_horizons": dict(self.seq_horizons),
            "keys": {sw: entry.to_dict() for sw, entry in self.keys.items()},
            "open_windows": {sw: dict(window)
                             for sw, window in self.open_windows.items()},
            "epochs": dict(self.epochs),
            "shard_map": {shard: list(switches)
                          for shard, switches in self.shard_map.items()},
            "applied_lsn": self.applied_lsn,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StoreState":
        return cls(
            seq_horizons={sw: int(v)
                          for sw, v in data["seq_horizons"].items()},
            keys={sw: KeyEntry.from_dict(entry)
                  for sw, entry in data["keys"].items()},
            open_windows={sw: dict(window)
                          for sw, window in data["open_windows"].items()},
            epochs={sw: int(v) for sw, v in data["epochs"].items()},
            shard_map={shard: list(switches)
                       for shard, switches in data["shard_map"].items()},
            applied_lsn=int(data["applied_lsn"]),
        )


def apply_record(state: StoreState, record) -> StoreState:
    """Fold one journal record into ``state`` (mutates and returns it).

    ``record`` is anything with ``.type``, ``.data`` and ``.lsn``
    (a :class:`~repro.store.journal.JournalRecord`).  Unknown types
    raise — the journal validated types at append time, so an unknown
    type here means a version skew worth surfacing, not skipping.
    """
    rec_type = record.type
    data = record.data
    if rec_type == "key_install":
        entry = state.key_entry(data["switch"])
        kind = data["kind"]
        if kind == "seed":
            entry.seed = int(data["key"])
        elif kind == "auth":
            entry.auth = int(data["key"])
        elif kind == "local":
            version = int(data["version"]) % KEY_VERSIONS
            entry.local_slots[version] = int(data["key"])
            entry.local_active = version
            entry.has_local = True
        else:
            raise ValueError(f"unknown key kind {kind!r}")
    elif rec_type == "key_rollover":
        entry = state.key_entry(data["switch"])
        version = int(data["version"]) % KEY_VERSIONS
        entry.local_slots[version] = int(data["key"])
        entry.local_active = version
        entry.has_local = True
    elif rec_type == "seq_advance":
        switch = data["switch"]
        # Unmasked: horizons are monotone even across the controller's
        # 32-bit wrap (masking here would make a post-wrap horizon look
        # stale and freeze reservations at the pre-wrap value).
        horizon = int(data["horizon"])
        # Horizons only move forward; a replayed stale horizon must not
        # drag recovery below sequence numbers already burned.
        if horizon > state.seq_horizons.get(switch, 0):
            state.seq_horizons[switch] = horizon
    elif rec_type == "batch_open":
        state.open_windows[data["switch"]] = {
            "reg": data["reg"], "index": int(data["index"]),
        }
    elif rec_type == "batch_close":
        state.open_windows.pop(data["switch"], None)
    elif rec_type == "shard_map":
        state.shard_map[data["shard"]] = list(data["switches"])
    elif rec_type == "epoch_advance":
        switch = data["switch"]
        epoch = int(data["epoch"])
        if epoch > state.epochs.get(switch, 0):
            state.epochs[switch] = epoch
    else:
        raise ValueError(f"cannot replay unknown record type {rec_type!r}")
    state.applied_lsn = record.lsn
    return state


def replay_records(records: Iterable,
                   base: Optional[StoreState] = None) -> StoreState:
    """Fold a record stream into a state, starting from ``base``.

    Records at or below ``base.applied_lsn`` (already inside the
    snapshot) are skipped, so callers can hand the *whole* journal to a
    snapshot-seeded replay without double-applying the prefix.
    """
    state = base if base is not None else StoreState()
    for record in records:
        if record.lsn <= state.applied_lsn:
            continue
        apply_record(state, record)
    return state


__all__ = ["KeyEntry", "SEQ_MASK", "StoreState", "apply_record",
           "replay_records"]
