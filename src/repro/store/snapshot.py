"""Compacted snapshots of the controller's durable state.

A snapshot is one JSON document — schema tag, the serialized
:class:`~repro.store.state.StoreState`, and an embedded CRC-32 over the
canonical body — written with the atomic-write idiom
(:func:`~repro.store.atomic.atomic_write_bytes`, ``fsync=True``) so a
crash mid-snapshot can never surface a torn file under the committed
name.  File names carry the covered LSN (``snapshot-<lsn>.json``):
recovery loads the newest one whose checksum verifies and replays only
the journal tail past its ``applied_lsn``.

Corruption handling mirrors the journal's philosophy: a snapshot that
fails its checksum (disk fault, partial ancient write) is *skipped with
a warning metric*, falling back to the previous generation — recovery
prefers replaying a longer tail over refusing to start.  ``keep``
generations are retained precisely so that fallback exists.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.crypto.crc import Crc32
from repro.store.atomic import (
    atomic_write_bytes,
    fsync_dir,
    sweep_orphan_tmp,
)
from repro.store.state import StoreState

SNAPSHOT_SCHEMA = "repro-store-snapshot/1"

_SNAPSHOT_FMT = "snapshot-%012d.json"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"

_CRC = Crc32()


def _canonical_body(state_doc: dict) -> bytes:
    return json.dumps(state_doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class SnapshotStore:
    """Atomic, checksummed snapshot files under one directory."""

    def __init__(self, root: str, *, keep: int = 2, metrics=None,
                 **metric_labels):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = root
        self.keep = keep
        self._metrics = metrics if metrics is not None \
            and getattr(metrics, "enabled", False) else None
        self._labels = metric_labels
        os.makedirs(self.root, exist_ok=True)
        # A killed writer's mkstemp leftovers (satellite: same sweep
        # discipline as ResultCache.clear()).
        sweep_orphan_tmp(self.root)

    # ------------------------------------------------------------------

    def save(self, state: StoreState) -> str:
        """Write a snapshot covering ``state.applied_lsn``; returns path.

        Prunes generations beyond ``keep`` afterwards — never before
        the new one is durably committed.
        """
        body = state.to_dict()
        document = {
            "schema": SNAPSHOT_SCHEMA,
            "crc32": _CRC.compute(_canonical_body(body)),
            "state": body,
        }
        path = os.path.join(
            self.root, _SNAPSHOT_FMT % (state.applied_lsn + 1))
        atomic_write_bytes(
            path,
            json.dumps(document, sort_keys=True, indent=1).encode("utf-8"),
            fsync=True,
        )
        if self._metrics is not None:
            self._metrics.counter("store_snapshots_total",
                                  **self._labels).inc()
        self._prune()
        return path

    def load_latest(self) -> Optional[StoreState]:
        """Newest snapshot whose checksum verifies, else ``None``.

        A corrupt generation is counted (``store_snapshot_corrupt_total``)
        and skipped in favour of the one before it.
        """
        for _lsn, path in reversed(self._snapshots()):
            state = self._load(path)
            if state is not None:
                return state
        return None

    # ------------------------------------------------------------------

    def _load(self, path: str) -> Optional[StoreState]:
        try:
            with open(path, "rb") as handle:
                document = json.loads(handle.read().decode("utf-8"))
            if document.get("schema") != SNAPSHOT_SCHEMA:
                raise ValueError("unknown snapshot schema")
            body = document["state"]
            if _CRC.compute(_canonical_body(body)) != document["crc32"]:
                raise ValueError("snapshot checksum mismatch")
            return StoreState.from_dict(body)
        except (OSError, ValueError, KeyError, TypeError):
            if self._metrics is not None:
                self._metrics.counter("store_snapshot_corrupt_total",
                                      **self._labels).inc()
            return None

    def _snapshots(self) -> List[Tuple[int, str]]:
        entries: List[Tuple[int, str]] = []
        if not os.path.isdir(self.root):
            return entries
        for name in os.listdir(self.root):
            if not (name.startswith(_SNAPSHOT_PREFIX)
                    and name.endswith(_SNAPSHOT_SUFFIX)):
                continue
            digits = name[len(_SNAPSHOT_PREFIX):-len(_SNAPSHOT_SUFFIX)]
            try:
                lsn = int(digits)
            except ValueError:
                continue
            entries.append((lsn, os.path.join(self.root, name)))
        entries.sort()
        return entries

    def _prune(self) -> None:
        snapshots = self._snapshots()
        removed = 0
        for _lsn, path in snapshots[:-self.keep]:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        if removed:
            fsync_dir(self.root)


__all__ = ["SNAPSHOT_SCHEMA", "SnapshotStore"]
