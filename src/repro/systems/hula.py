"""HULA: scalable load balancing using programmable data planes [1].

HULA's control loop runs entirely in the data plane: each destination ToR
periodically floods *probes*; every switch on a probe's path stamps it
with the maximum link utilization seen so far; receivers remember, per
destination, the least-utilized next hop (``best_hop``) and forward data
packets along it.  That makes probes exactly the DP-DP feedback messages
of the paper's threat model: an on-link MitM who rewrites ``path_util``
steers traffic at will (Fig 3).  With P4Auth, probes carry a per-link
digest and tampered ones are dropped at the first honest switch (Fig 17).

Implementation notes
--------------------
- Probe routing is configured per switch as ``probe_routes``: ingress
  port -> list of egress ports (the probe multicast tree).  When a probe
  is forwarded out of port q, its ``path_util`` is maxed with the
  utilization of the link it is about to cross *in the data direction* —
  which this switch measures as received data bytes on port q.  The
  receiving endpoint (S1) trusts the probe field as-is, which is exactly
  the attack surface of Fig 3: the last writer before S1 wins.
- Link utilization uses HULA's estimator: an exponentially decayed byte
  counter, ``U = U * (1 - dt/tau) + size`` per data packet, with
  ``util_pct = 100 * (U * 8 / tau) / capacity``.
- ``best_hop`` entries age out (``aging_s``): if no valid probe refreshed
  a destination via the current best hop, the next valid probe wins
  regardless of utilization.  This is also what re-routes traffic away
  from a compromised link once P4Auth starts dropping its probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dataplane.headers import HeaderType
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.switch import DataplaneSwitch

#: The HULA probe: destination ToR id, max path utilization (percent),
#: and a probe sequence id.
HULA_PROBE_HEADER = HeaderType("hula_probe", [
    ("dst_tor", 16),
    ("path_util", 32),
    ("probe_id", 32),
])

#: Data packets: destination ToR plus flow identity.
HULA_DATA_HEADER = HeaderType("hula_data", [
    ("dst_tor", 16),
    ("flow_id", 32),
    ("seq", 16),
])

#: Shared zero payload used to pad data packets to a realistic size.
_DATA_PAYLOAD = bytes(1400)


def make_probe(dst_tor: int, probe_id: int, path_util: int = 0) -> Packet:
    """A fresh HULA probe packet, as the destination ToR would originate."""
    packet = Packet()
    packet.push("hula_probe", HULA_PROBE_HEADER.instantiate(
        dst_tor=dst_tor, path_util=path_util, probe_id=probe_id))
    return packet


def make_data_packet(dst_tor: int, flow_id: int, seq: int = 0,
                     size_bytes: int = 1408) -> Packet:
    """A data packet addressed to a ToR (padded to ``size_bytes``)."""
    header_bytes = HULA_DATA_HEADER.byte_width
    pad = max(0, size_bytes - header_bytes)
    packet = Packet(payload=_DATA_PAYLOAD[:pad] if pad <= len(_DATA_PAYLOAD)
                    else bytes(pad))
    packet.push("hula_data", HULA_DATA_HEADER.instantiate(
        dst_tor=dst_tor, flow_id=flow_id & 0xFFFFFFFF, seq=seq & 0xFFFF))
    return packet


@dataclass
class HulaConfig:
    """Per-switch HULA configuration."""

    #: Probe multicast tree: ingress port -> egress ports.  An empty list
    #: terminates the probe at this switch (it is a path endpoint).
    probe_routes: Dict[int, List[int]] = field(default_factory=dict)
    #: Destinations directly attached here: dst_tor -> host-facing port.
    edge_delivery: Dict[int, int] = field(default_factory=dict)
    #: Fallback uplinks used when no best-hop entry is fresh.
    uplink_ports: List[int] = field(default_factory=list)
    #: best_hop entry lifetime.
    aging_s: float = 0.1
    #: Utilization estimator decay constant and the modeled link capacity.
    util_tau_s: float = 0.05
    capacity_bps: float = 100e6
    #: Number of ToR ids the registers are sized for.
    max_tors: int = 64


class HulaDataplane:
    """The HULA program fragment on one switch."""

    def __init__(self, switch: DataplaneSwitch, config: HulaConfig):
        self.switch = switch
        self.config = config
        registers = switch.registers
        size = config.max_tors
        self.best_hop = registers.define("hula_best_hop", 8, size)
        self.min_util = registers.define("hula_min_util", 32, size)
        # Timestamps in integer microseconds (registers hold unsigned ints).
        self.last_update = registers.define("hula_last_update", 64, size)
        # Utilization estimator state, per port (index = port number):
        # decayed received-byte counter + last-update timestamp (us).
        ports = switch.num_ports + 1
        self._rx_util = registers.define("hula_rx_util_bytes", 64, ports)
        self._rx_last = registers.define("hula_rx_last_us", 64, ports)
        #: Data packets transmitted per egress port (experiment readout).
        self.data_tx_per_port: Dict[int, int] = {}
        self.probes_processed = 0
        self.data_forwarded = 0
        self.data_dropped = 0
        self._fallback_rr = 0

    def install(self) -> "HulaDataplane":
        self.switch.pipeline.add_stage("hula", self._stage)
        return self

    # ------------------------------------------------------------------
    # link utilization estimator
    # ------------------------------------------------------------------

    def _decayed(self, port: int, now: float) -> int:
        """The counter after applying decay up to ``now`` (no write)."""
        tau_us = self.config.util_tau_s * 1e6
        dt_us = now * 1e6 - self._rx_last.read(port)
        if dt_us >= tau_us:
            return 0
        counter = self._rx_util.read(port)
        return int(counter * (1.0 - dt_us / tau_us))

    def _account_rx(self, port: int, size_bytes: int, now: float) -> None:
        """HULA estimator update: U = U * (1 - dt/tau) + size."""
        self._rx_util.write(port, self._decayed(port, now) + size_bytes)
        self._rx_last.write(port, int(now * 1e6))

    def port_util(self, port: int, now: float) -> int:
        """Data-direction utilization percent of the link on ``port``."""
        rate_bps = self._decayed(port, now) * 8.0 / self.config.util_tau_s
        return min(100, int(100.0 * rate_bps / self.config.capacity_bps))

    # ------------------------------------------------------------------
    # pipeline stage
    # ------------------------------------------------------------------

    def _stage(self, ctx: PipelineContext) -> None:
        # No ctx.stop(): later stages (e.g. P4Auth's egress signing) must
        # still see the emitted packets.
        if ctx.packet.has("hula_probe"):
            self._process_probe(ctx)
        elif ctx.packet.has("hula_data"):
            self._process_data(ctx)

    def _process_probe(self, ctx: PipelineContext) -> None:
        probe = ctx.packet.get("hula_probe")
        dst = probe["dst_tor"] % self.config.max_tors
        util = probe["path_util"]
        now_us = int(ctx.now * 1e6)
        self.probes_processed += 1

        last = self.last_update.read(dst)
        aged = (last == 0  # never updated
                or now_us - last > self.config.aging_s * 1e6)
        if (util < self.min_util.read(dst)
                or self.best_hop.read(dst) == ctx.ingress_port
                or aged):
            self.min_util.write(dst, util)
            self.best_hop.write(dst, ctx.ingress_port)
            # A zero timestamp means "never"; clamp genuine t=0 updates.
            self.last_update.write(dst, max(1, now_us))

        # Forward along the probe tree.  Each clone's path_util is maxed
        # with the data-direction utilization of the link it will cross
        # (measured here as received data bytes on the egress port).
        out_ports = self.config.probe_routes.get(ctx.ingress_port, [])
        for port in out_ports:
            clone = ctx.packet.copy()
            clone.metadata.pop("p4auth_signed", None)
            clone.get("hula_probe")["path_util"] = max(
                util, self.port_util(port, ctx.now))
            ctx.emit(port, clone)

    def _process_data(self, ctx: PipelineContext) -> None:
        data = ctx.packet.get("hula_data")
        dst = data["dst_tor"] % self.config.max_tors
        now_us = int(ctx.now * 1e6)
        # The bytes crossed the ingress link regardless of this packet's
        # fate, so the estimator accounts them up front.
        self._account_rx(ctx.ingress_port, ctx.packet.size_bytes, ctx.now)

        if data["dst_tor"] in self.config.edge_delivery:
            port = self.config.edge_delivery[data["dst_tor"]]
        else:
            port = self.best_hop.read(dst)
            fresh = (now_us - self.last_update.read(dst)
                     <= self.config.aging_s * 1e6)
            if port == 0 or not fresh:
                if not self.config.uplink_ports:
                    self.data_dropped += 1
                    ctx.drop("no fresh best hop and no fallback uplink")
                    return
                port = self.config.uplink_ports[
                    self._fallback_rr % len(self.config.uplink_ports)]
                self._fallback_rr += 1

        self.data_forwarded += 1
        self.data_tx_per_port[port] = self.data_tx_per_port.get(port, 0) + 1
        ctx.emit(port)


def fig3_hula_configs() -> Dict[str, HulaConfig]:
    """HULA configs for the Fig 3 topology built by
    :func:`repro.net.topology.hula_fig3_topology`.

    ToR ids: 1 = s1 (host h1), 5 = s5 (host h5).  Probes originate at h5,
    enter s5 on port 1, fan out to s2/s3/s4, and terminate at s1.
    """
    mid = HulaConfig(probe_routes={2: [1]}, uplink_ports=[1])
    return {
        "s1": HulaConfig(probe_routes={2: [], 3: [], 4: []},
                         edge_delivery={1: 1}, uplink_ports=[2, 3, 4]),
        "s2": mid,
        "s3": HulaConfig(probe_routes={2: [1]}, uplink_ports=[1]),
        "s4": HulaConfig(probe_routes={2: [1]}, uplink_ports=[1]),
        "s5": HulaConfig(probe_routes={1: [2, 3, 4]},
                         edge_delivery={5: 1}, uplink_ports=[2, 3, 4]),
    }


def leaf_spine_hula_configs(num_leaves: int,
                            num_spines: int) -> Dict[str, HulaConfig]:
    """HULA configs for :func:`repro.net.topology.leaf_spine`.

    ToR id of ``leafN`` is N.  Each leaf originates probes for its own
    ToR id from its host port (port 1) toward every spine; spines fan a
    probe arriving from one leaf out to all other leaves; leaves
    terminate probes for other ToRs (they only learn best hops).
    """
    configs: Dict[str, HulaConfig] = {}
    spine_uplinks = [2 + index for index in range(num_spines)]
    for leaf_index in range(1, num_leaves + 1):
        configs[f"leaf{leaf_index}"] = HulaConfig(
            probe_routes={1: list(spine_uplinks),
                          **{port: [] for port in spine_uplinks}},
            edge_delivery={leaf_index: 1},
            uplink_ports=list(spine_uplinks),
        )
    for spine_index in range(1, num_spines + 1):
        routes = {
            leaf_port: [other for other in range(1, num_leaves + 1)
                        if other != leaf_port]
            for leaf_port in range(1, num_leaves + 1)
        }
        configs[f"spine{spine_index}"] = HulaConfig(probe_routes=routes)
    return configs


def chain_hula_configs(num_switches: int) -> Dict[str, HulaConfig]:
    """HULA configs for :func:`repro.net.topology.linear_chain`: probes
    enter each switch on port 1 and leave on port 2 (used by Fig 21)."""
    configs = {}
    for index in range(1, num_switches + 1):
        configs[f"s{index}"] = HulaConfig(probe_routes={1: [2]},
                                          uplink_ports=[2])
    return configs


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

#: Canonical sizing for the verify declaration and its live twin.
VERIFY_NUM_PORTS = 8
VERIFY_MAX_TORS = 64


def verify_program() -> "object":
    """Declared IR of the HULA stage (probe + data paths, reads first)."""
    from repro.verify.ir import (
        BinOp, Const, EmitPacket, FieldRef, HeaderDecl, MetaRef, Program,
        RegRead, RegWrite, RegisterDecl, RequireValid, SetField, SetMeta,
        StageDecl,
    )

    ports = VERIFY_NUM_PORTS + 1
    program = Program("hula")
    program.registers = [
        RegisterDecl("hula_best_hop", 8, VERIFY_MAX_TORS),
        RegisterDecl("hula_min_util", 32, VERIFY_MAX_TORS),
        RegisterDecl("hula_last_update", 64, VERIFY_MAX_TORS),
        RegisterDecl("hula_rx_util_bytes", 64, ports),
        RegisterDecl("hula_rx_last_us", 64, ports),
    ]
    program.headers = [
        HeaderDecl("hula_probe", tuple(HULA_PROBE_HEADER.fields)),
        HeaderDecl("hula_data", tuple(HULA_DATA_HEADER.fields)),
    ]
    # One stage = one stateful-ALU pass per array: all reads precede all
    # writes (the probe and data paths are exclusive branches in the
    # executable form; the linearization keeps hardware ordering honest).
    program.stages = [StageDecl("hula", (
        RequireValid("hula_probe"),
        RequireValid("hula_data"),
        SetMeta("ingress_port", Const(0, 16)),
        SetMeta("now_us", Const(0, 64)),
        SetMeta("dst", FieldRef("hula_probe", "dst_tor")),
        RegRead("hula_last_update", MetaRef("dst"), "last"),
        RegRead("hula_min_util", MetaRef("dst"), "min_util"),
        RegRead("hula_best_hop", MetaRef("dst"), "best"),
        RegRead("hula_rx_util_bytes", MetaRef("ingress_port"), "rx_bytes"),
        RegRead("hula_rx_last_us", MetaRef("ingress_port"), "rx_last"),
        RegWrite("hula_min_util", MetaRef("dst"),
                 FieldRef("hula_probe", "path_util")),
        RegWrite("hula_best_hop", MetaRef("dst"), MetaRef("ingress_port")),
        RegWrite("hula_last_update", MetaRef("dst"), MetaRef("now_us")),
        RegWrite("hula_rx_util_bytes", MetaRef("ingress_port"),
                 BinOp("add", (MetaRef("rx_bytes"), Const(1408)))),
        RegWrite("hula_rx_last_us", MetaRef("ingress_port"),
                 MetaRef("now_us")),
        SetField("hula_probe", "path_util", BinOp("max", (
            FieldRef("hula_probe", "path_util"), MetaRef("rx_bytes")))),
        EmitPacket(headers=("hula_probe", "hula_data")),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("hula-verify", num_ports=VERIFY_NUM_PORTS)
    HulaDataplane(switch, HulaConfig(max_tors=VERIFY_MAX_TORS)).install()
    return switch
