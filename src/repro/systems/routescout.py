"""RouteScout: performance-aware internet path selection [3] (Fig 2).

RouteScout runs at a network edge and steers outgoing traffic across a
small set of upstream paths.  The data plane aggregates per-path latency
into registers; the controller periodically *reads* those registers,
computes a new traffic split, and *writes* it back — making both
directions of its control loop C-DP messages of the paper's threat model.
An adversary at the switch OS who inflates path-1's reported latency
makes the controller shift traffic onto path 2 (Fig 2); with P4Auth the
tampered response fails digest verification and the controller keeps the
current split (Fig 16).

The paper itself implemented RouteScout as a software simulation (its
source is unavailable); this module is the equivalent simulation on our
switch substrate.  Per-packet path latency samples come from a
:class:`PathModel` — base propagation latency plus a congestion term
driven by the path's current load — standing in for the passive RTT
measurement the real system performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.crypto.crc import Crc32
from repro.dataplane.headers import HeaderType
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.switch import DataplaneSwitch

#: Outgoing data packets: destination + flow identity.
RS_DATA_HEADER = HeaderType("rs_data", [
    ("dst", 32),
    ("flow_id", 32),
])

_PAYLOAD = bytes(1400)


def make_rs_packet(dst: int, flow_id: int, size_bytes: int = 1408) -> Packet:
    header_bytes = RS_DATA_HEADER.byte_width
    pad = max(0, size_bytes - header_bytes)
    packet = Packet(payload=_PAYLOAD[:pad] if pad <= len(_PAYLOAD)
                    else bytes(pad))
    packet.push("rs_data", RS_DATA_HEADER.instantiate(
        dst=dst & 0xFFFFFFFF, flow_id=flow_id & 0xFFFFFFFF))
    return packet


@dataclass
class PathModel:
    """Synthetic latency process for one upstream path.

    ``latency_us = base_us + sensitivity_us_per_pct * utilization_pct`` —
    the canonical congestion response.  Utilization comes from the data
    plane's own windowed byte counters, closing the feedback loop: the
    more traffic RouteScout puts on a path, the worse that path reports.
    """

    base_us: int
    sensitivity_us_per_pct: float = 8.0

    def latency_us(self, utilization_pct: int) -> int:
        return int(self.base_us + self.sensitivity_us_per_pct * utilization_pct)


@dataclass
class RouteScoutConfig:
    """Per-switch RouteScout configuration (two upstream paths)."""

    #: Egress port per path id (exactly two paths, as in Fig 2).
    path_ports: List[int] = field(default_factory=lambda: [2, 3])
    #: Latency process per path.
    path_models: List[PathModel] = field(default_factory=lambda: [
        PathModel(base_us=400), PathModel(base_us=700),
    ])
    #: Utilization estimator window and modeled path capacity.
    util_window_s: float = 0.1
    capacity_bps: float = 100e6
    #: Initial split: percent of flows on path 0.
    initial_split_pct: int = 50

    def __post_init__(self) -> None:
        if len(self.path_ports) != 2 or len(self.path_models) != 2:
            raise ValueError("RouteScout models exactly two upstream paths")


class RouteScoutDataplane:
    """RouteScout's switch-resident half.

    Registers exposed to the controller (and hence to the C-DP threat
    surface): ``rs_split`` (percent of flows hashed onto path 0),
    ``rs_lat_sum`` and ``rs_lat_cnt`` (per-path latency aggregates).
    """

    def __init__(self, switch: DataplaneSwitch,
                 config: Optional[RouteScoutConfig] = None):
        self.switch = switch
        self.config = config or RouteScoutConfig()
        registers = switch.registers
        self.split = registers.define("rs_split", 8, 1)
        self.split.write(0, self.config.initial_split_pct)
        self.lat_sum = registers.define("rs_lat_sum", 64, 2)
        self.lat_cnt = registers.define("rs_lat_cnt", 32, 2)
        size = switch.num_ports + 1
        self._win_id = registers.define("rs_util_window", 64, size)
        self._win_cur = registers.define("rs_util_bytes_cur", 64, size)
        self._win_prev = registers.define("rs_util_bytes_prev", 64, size)
        self._crc = Crc32()
        self.tx_per_path: Dict[int, int] = {0: 0, 1: 0}
        self.forwarded = 0

    def install(self) -> "RouteScoutDataplane":
        self.switch.pipeline.add_stage("routescout", self._stage)
        return self

    # -- utilization estimator (same windowed design as HULA's) --------------

    def _account_tx(self, port: int, size_bytes: int, now: float) -> None:
        window = int(now / self.config.util_window_s)
        if self._win_id.read(port) != window:
            if self._win_id.read(port) == window - 1:
                self._win_prev.write(port, self._win_cur.read(port))
            else:
                self._win_prev.write(port, 0)
            self._win_id.write(port, window)
            self._win_cur.write(port, 0)
        self._win_cur.read_modify_write(port, lambda v: v + size_bytes)

    def port_util(self, port: int, now: float) -> int:
        window = int(now / self.config.util_window_s)
        if self._win_id.read(port) < window - 1:
            return 0
        window_bytes = self._win_prev.read(port)
        capacity_bytes = (self.config.capacity_bps / 8.0
                          * self.config.util_window_s)
        return min(100, int(100.0 * window_bytes / capacity_bytes))

    # -- pipeline stage ----------------------------------------------------------

    def _stage(self, ctx: PipelineContext) -> None:
        if not ctx.packet.has("rs_data"):
            return
        data = ctx.packet.get("rs_data")
        bucket = self._crc.compute(data["flow_id"].to_bytes(4, "little")) % 100
        path = 0 if bucket < self.split.read(0) else 1
        port = self.config.path_ports[path]
        # Passive latency measurement: aggregate this packet's sample.
        sample = self.config.path_models[path].latency_us(
            self.port_util(port, ctx.now))
        self.lat_sum.read_modify_write(path, lambda v: v + sample)
        self.lat_cnt.read_modify_write(path, lambda v: v + 1)
        self.tx_per_path[path] += 1
        self.forwarded += 1
        self._account_tx(port, ctx.packet.size_bytes, ctx.now)
        ctx.emit(port)


class RouteScoutController:
    """RouteScout's control loop over a pluggable register client.

    ``client`` is any object exposing ``read_register(switch, reg, index,
    cb)`` / ``write_register(switch, reg, index, value, cb)`` — the
    authenticated :class:`~repro.core.P4AuthController` or the vulnerable
    :class:`~repro.runtime.PlainController`.  Each epoch the controller
    reads the four latency aggregates, recomputes the split (inverse-
    latency weighting, exponentially smoothed), writes it back, and clears
    the aggregates.  If any read of the epoch went missing or failed
    verification, the epoch is skipped: the current split is retained and
    the event is counted — the "refrains from changing the ratio" defense
    the paper demonstrates.
    """

    def __init__(self, client, sim, switch_name: str, epoch_s: float = 1.0,
                 smoothing: float = 0.5, min_split: int = 5,
                 max_split: int = 95):
        self.client = client
        self.sim = sim
        self.switch_name = switch_name
        self.epoch_s = epoch_s
        self.smoothing = smoothing
        self.min_split = min_split
        self.max_split = max_split
        self.current_split = 50
        self.epochs_run = 0
        self.epochs_skipped = 0
        self.split_history: List[int] = []
        self._running = False

    def start(self) -> None:
        self._running = True
        self.sim.schedule(self.epoch_s, self._epoch)

    def stop(self) -> None:
        self._running = False

    def _epoch(self) -> None:
        if not self._running:
            return
        values: Dict[str, int] = {}

        def reader(key: str) -> Callable[[bool, int], None]:
            def callback(ok: bool, value: int) -> None:
                if ok:
                    values[key] = value
            return callback

        for path in (0, 1):
            self.client.read_register(self.switch_name, "rs_lat_sum", path,
                                      reader(f"sum{path}"))
            self.client.read_register(self.switch_name, "rs_lat_cnt", path,
                                      reader(f"cnt{path}"))
        # Give the reads most of the epoch to complete, then evaluate.
        self.sim.schedule(self.epoch_s * 0.5, self._finish_epoch, values)
        self.sim.schedule(self.epoch_s, self._epoch)

    def _finish_epoch(self, values: Dict[str, int]) -> None:
        self.epochs_run += 1
        complete = all(f"{k}{p}" in values for k in ("sum", "cnt")
                       for p in (0, 1))
        if not complete or values["cnt0"] == 0 or values["cnt1"] == 0:
            # Tampered/missing responses (or an idle path): keep the
            # current split and raise no write.
            self.epochs_skipped += 1
            self.split_history.append(self.current_split)
            return
        avg0 = values["sum0"] / values["cnt0"]
        avg1 = values["sum1"] / values["cnt1"]
        weight0 = 1.0 / max(avg0, 1.0)
        weight1 = 1.0 / max(avg1, 1.0)
        target = 100.0 * weight0 / (weight0 + weight1)
        blended = (self.smoothing * target
                   + (1.0 - self.smoothing) * self.current_split)
        self.current_split = int(
            min(self.max_split, max(self.min_split, round(blended))))
        self.split_history.append(self.current_split)
        self.client.write_register(self.switch_name, "rs_split", 0,
                                   self.current_split)
        for path in (0, 1):
            self.client.write_register(self.switch_name, "rs_lat_sum", path, 0)
            self.client.write_register(self.switch_name, "rs_lat_cnt", path, 0)


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

VERIFY_NUM_PORTS = 4


def verify_program() -> "object":
    """Declared IR of the RouteScout stage."""
    from repro.verify.ir import (
        Const, EmitPacket, FieldRef, HashDecl, HashDigest, HeaderDecl,
        MetaRef, Program, RegRead, RegReadModifyWrite, RegWrite,
        RegisterDecl, RequireValid, SetMeta, StageDecl,
    )

    size = VERIFY_NUM_PORTS + 1
    program = Program("routescout")
    program.registers = [
        RegisterDecl("rs_split", 8, 1),
        RegisterDecl("rs_lat_sum", 64, 2),
        RegisterDecl("rs_lat_cnt", 32, 2),
        RegisterDecl("rs_util_window", 64, size),
        RegisterDecl("rs_util_bytes_cur", 64, size),
        RegisterDecl("rs_util_bytes_prev", 64, size),
    ]
    program.headers = [HeaderDecl("rs_data", tuple(RS_DATA_HEADER.fields))]
    program.hashes = [HashDecl("rs_flow_bucket", 1)]
    program.stages = [StageDecl("routescout", (
        RequireValid("rs_data"),
        SetMeta("port", Const(0, 16)),
        SetMeta("sample", Const(20, 32)),
        HashDigest("bucket", (FieldRef("rs_data", "flow_id"),),
                   keyed=False, extern="crc32"),
        RegRead("rs_split", Const(0), "split"),
        RegRead("rs_util_window", MetaRef("port"), "win_id"),
        RegRead("rs_util_bytes_cur", MetaRef("port"), "cur"),
        RegWrite("rs_util_bytes_prev", MetaRef("port"), MetaRef("cur")),
        RegWrite("rs_util_window", MetaRef("port"), MetaRef("win_id")),
        RegReadModifyWrite("rs_util_bytes_cur", MetaRef("port"),
                           Const(1408), "cur_new"),
        RegReadModifyWrite("rs_lat_sum", MetaRef("bucket"),
                           MetaRef("sample"), "lat_total"),
        RegReadModifyWrite("rs_lat_cnt", MetaRef("bucket"), Const(1),
                           "lat_n"),
        EmitPacket(headers=("rs_data",)),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("routescout-verify", num_ports=VERIFY_NUM_PORTS)
    RouteScoutDataplane(switch).install()
    return switch
