"""FlowRadar mini-model: encoded per-flow counters (Table I).

FlowRadar [9] keeps per-flow packet counters in an invertible bloom
lookup table (IBLT) in the data plane and periodically exports the cells
to the controller, which peels them back into exact flow counts.  The
export crosses the untrusted switch OS: Table I's attack alters the
exported values, which either breaks decoding or — worse — silently
corrupts the recovered counters, poisoning loss analysis.

Scenario: a known flow set is inserted; the controller reads out every
IBLT cell via register reads; the adversary perturbs the ``value_sum``
responses for a few cells.  Without P4Auth, decode still succeeds but
reports wrong counts (*silent* corruption).  With P4Auth, the tampered
responses are rejected, the affected cells are re-read flagged, and the
decode runs on verified data only.

Metric: maximum per-flow counter error in the decoded flow set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.attacks.control_plane import RegisterResponseTamperer
from repro.dataplane.sketches import Iblt
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.systems.tableone import TableIScenarioResult, build_deployment, check_mode

IBLT_CELLS = 64
NUM_FLOWS = 12


class FlowRadarDataplane:
    """The encoded flowset resident in switch registers."""

    def __init__(self, switch: DataplaneSwitch):
        self.switch = switch
        self.iblt = Iblt(switch.registers, "fr_iblt", cells=IBLT_CELLS)

    def record(self, flow_id: int, packets: int) -> None:
        self.iblt.insert(flow_id, packets)


def _collect_cells(client, sim, switch_name: str,
                   cells: int) -> Tuple[List[List[int]], int]:
    """Read out every IBLT cell via the C-DP register interface.

    Returns (cells, failed_reads): each cell is [count, id_xor,
    value_sum]; reads that never completed (tampered under P4Auth) leave
    ``None`` markers that the caller counts and zero-fills.
    """
    table: List[List[Optional[int]]] = [[None, None, None]
                                        for _ in range(cells)]
    registers = ("fr_iblt_count", "fr_iblt_idxor", "fr_iblt_valsum")

    def reader(index: int, column: int):
        def callback(ok: bool, value: int) -> None:
            if ok:
                table[index][column] = value
        return callback

    for index in range(cells):
        for column, reg_name in enumerate(registers):
            client.read_register(switch_name, reg_name, index,
                                 reader(index, column))
    sim.run(until=sim.now + 10.0)
    failed = sum(1 for cell in table if any(v is None for v in cell))
    filled = [[v if v is not None else 0 for v in cell] for cell in table]
    return filled, failed


def run_scenario(mode: str, seed: int = 5) -> TableIScenarioResult:
    """Table I row "Measurement / FlowRadar": poison loss analysis."""
    check_mode(mode)
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    flowradar = FlowRadarDataplane(switch)
    client, dataplane = build_deployment(mode, switch, net, sim)

    # Ground truth: NUM_FLOWS flows with known packet counts.
    truth: Dict[int, int] = {
        0x1000 + index: 100 + 7 * index for index in range(NUM_FLOWS)
    }
    for flow_id, packets in truth.items():
        flowradar.record(flow_id, packets)

    if mode in ("attack", "p4auth"):
        valsum_id = switch.registers.id_of("fr_iblt_valsum")
        # Consistently perturb every cell of one target flow: the peel
        # stays self-consistent, so decode *succeeds* with a wrong count
        # for that flow — silent corruption of the loss analysis.  (The
        # IBLT hash functions are public, so the attacker can compute the
        # target cells.)
        target_flow = 0x1005
        cells_of_target = flowradar.iblt._positions(target_flow)
        adversary = RegisterResponseTamperer(
            targets=[(valsum_id, index) for index in cells_of_target],
            transform=lambda value: value + 25,
        )
        adversary.attach(net.control_channels["s1"])

    cells, failed_reads = _collect_cells(client, sim, "s1", IBLT_CELLS)
    if failed_reads > 0:
        # Some cell reads failed verification: refuse to decode rather
        # than accept potentially attacker-influenced data.  The failure
        # is known and attributable, not silent.
        decoded = None
    else:
        decoded = Iblt.decode([tuple(cell) for cell in cells])

    if decoded is None:
        max_error = float("inf")
        recovered = 0
    else:
        recovered = len(decoded)
        max_error = max(
            abs(decoded.get(flow_id, 0) - packets)
            for flow_id, packets in truth.items()
        )
    detected = False
    if mode == "p4auth":
        detected = client.stats.tampered_responses > 0
        # With P4Auth the tampered responses never reached the decoder;
        # the failed reads are *known* to the controller, not silent.
        silent = False
    else:
        silent = mode == "attack" and decoded is not None and max_error > 0
    return TableIScenarioResult(
        system="flowradar",
        mode=mode,
        impact_metric="max_flow_count_error",
        impact_value=max_error if max_error != float("inf") else -1.0,
        state_poisoned=silent,
        detected=detected,
        notes=(f"recovered={recovered}/{NUM_FLOWS} "
               f"failed_reads={failed_reads} decode_ok={decoded is not None}"),
    )


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

def verify_program() -> "object":
    """Declared IR of the IBLT encode path.

    The executable model performs encoding host-side (:meth:`FlowRadarDataplane.record`),
    so the declared ``fr_encode`` stage has no live pipeline twin — the
    registry marks this program ``check_stages=False``.
    """
    from repro.verify.ir import (
        Const, HashDecl, HashDigest, MetaRef, Program,
        RegReadModifyWrite, RegisterDecl, SetMeta, StageDecl,
    )

    program = Program("flowradar")
    program.registers = [
        RegisterDecl("fr_iblt_count", 32, IBLT_CELLS),
        RegisterDecl("fr_iblt_idxor", 64, IBLT_CELLS),
        RegisterDecl("fr_iblt_valsum", 64, IBLT_CELLS),
    ]
    program.hashes = [HashDecl("fr_iblt_hash", 3)]
    program.stages = [StageDecl("fr_encode", (
        SetMeta("flow_id", Const(0, 32)),
        HashDigest("cell", (MetaRef("flow_id"),), keyed=False,
                   extern="iblt_hash"),
        RegReadModifyWrite("fr_iblt_count", MetaRef("cell"), Const(1),
                           "cell_count"),
        RegReadModifyWrite("fr_iblt_idxor", MetaRef("cell"),
                           MetaRef("flow_id"), "cell_idxor"),
        RegReadModifyWrite("fr_iblt_valsum", MetaRef("cell"), Const(1),
                           "cell_valsum"),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("flowradar-verify", num_ports=4)
    FlowRadarDataplane(switch)
    return switch
