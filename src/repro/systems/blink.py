"""Blink mini-model: fast reroute with per-prefix next-hop lists (Table I).

Blink [2] detects remote failures entirely in the data plane (from TCP
retransmission signatures) and fails over to a backup next hop; the
controller later refines the per-prefix next-hop registers.  The Table I
attack alters that C-DP update so the "refinement" points traffic back at
the dead port, re-poisoning the fast-reroute decision the data plane had
already fixed.

Scenario: traffic flows to prefix 0 via port 2; port 2 dies; the DP's
failure detector swaps to the backup (port 3); the controller then writes
its computed best next hop (also port 3).  The adversary rewrites that
write's value to the dead port 2.  Metric: post-failure delivery rate.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.attacks.control_plane import RegisterRequestTamperer
from repro.dataplane.headers import HeaderType
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.systems.tableone import TableIScenarioResult, build_deployment, check_mode

BLINK_DATA_HEADER = HeaderType("blink_data", [
    ("prefix_id", 16),
    ("seq", 32),
])

#: Consecutive losses on the active port before the DP fails over.
FAILOVER_THRESHOLD = 20


class BlinkDataplane:
    """Per-prefix active/backup next hops with in-DP failover."""

    def __init__(self, switch: DataplaneSwitch, num_prefixes: int = 16):
        self.switch = switch
        registers = switch.registers
        self.active_nh = registers.define("blink_active_nh", 8, num_prefixes)
        self.backup_nh = registers.define("blink_backup_nh", 8, num_prefixes)
        self.loss_streak = registers.define("blink_loss_streak", 16,
                                            num_prefixes)
        #: Ports currently black-holing traffic (the modeled remote failure).
        self.dead_ports: Set[int] = set()
        self.delivered = 0
        self.lost = 0
        self.failovers = 0

    def install(self) -> "BlinkDataplane":
        self.switch.pipeline.add_stage("blink", self._stage)
        return self

    def set_prefix(self, prefix: int, active: int, backup: int) -> None:
        self.active_nh.write(prefix, active)
        self.backup_nh.write(prefix, backup)

    def _stage(self, ctx: PipelineContext) -> None:
        if not ctx.packet.has("blink_data"):
            return
        prefix = ctx.packet.get("blink_data")["prefix_id"]
        port = self.active_nh.read(prefix)
        if port in self.dead_ports:
            self.lost += 1
            streak = self.loss_streak.read_modify_write(prefix,
                                                        lambda v: v + 1)
            if streak >= FAILOVER_THRESHOLD:
                # In-data-plane fast reroute: swap to the backup.
                backup = self.backup_nh.read(prefix)
                self.backup_nh.write(prefix, port)
                self.active_nh.write(prefix, backup)
                self.loss_streak.write(prefix, 0)
                self.failovers += 1
            ctx.drop("blackholed: active next hop is dead")
            return
        self.loss_streak.write(prefix, 0)
        self.delivered += 1
        ctx.emit(port)


def run_scenario(mode: str, duration_s: float = 10.0,
                 packet_period_s: float = 0.01,
                 fail_at_s: float = 2.0,
                 controller_update_at_s: float = 4.0) -> TableIScenarioResult:
    """Table I row "FRR / Blink": poisoning of fast rerouting decisions."""
    check_mode(mode)
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=4)
    net.add_switch(switch)
    blink = BlinkDataplane(switch).install()
    blink.set_prefix(0, active=2, backup=3)
    client, _dataplane = build_deployment(mode, switch, net, sim)
    base = sim.now

    adversary: Optional[RegisterRequestTamperer] = None
    if mode in ("attack", "p4auth"):
        adversary = RegisterRequestTamperer(
            reg_id=switch.registers.id_of("blink_active_nh"),
            transform=lambda _value: 2,  # point back at the dead port
        )
        adversary.attach(net.control_channels["s1"])

    sim.schedule(fail_at_s, blink.dead_ports.add, 2)

    # The controller's refinement write (best next hop for prefix 0 is
    # port 3), re-asserted every second as controllers do when syncing
    # state.  Each tampered re-assertion re-poisons the fast-reroute
    # decision until the DP's failure detector swaps away again.
    def refine() -> None:
        if sim.now - base >= duration_s:
            return
        client.write_register("s1", "blink_active_nh", 0, 3)
        sim.schedule(1.0, refine)

    sim.schedule(controller_update_at_s, refine)

    # Steady packet stream toward prefix 0.
    node = net.nodes["s1"]
    count = int(duration_s / packet_period_s)
    from repro.dataplane.packet import Packet
    for index in range(count):
        packet = Packet()
        packet.push("blink_data", BLINK_DATA_HEADER.instantiate(
            prefix_id=0, seq=index))
        sim.schedule_at(base + index * packet_period_s, node.receive,
                        packet, 1)
    sim.run(until=base + duration_s)

    # Delivery rate over the post-failure window.
    post_failure_packets = int((duration_s - fail_at_s) / packet_period_s)
    post_failure_delivered = blink.delivered - int(fail_at_s / packet_period_s)
    delivery = max(0.0, post_failure_delivered / post_failure_packets)
    poisoned = blink.active_nh.read(0) == 2 or blink.failovers > 1
    detected = (mode == "p4auth"
                and (client.stats.nacks_received > 0
                     or client.stats.tampered_responses > 0))
    return TableIScenarioResult(
        system="blink",
        mode=mode,
        impact_metric="post_failure_delivery_rate",
        impact_value=delivery,
        state_poisoned=poisoned,
        detected=detected,
        notes=f"failovers={blink.failovers} lost={blink.lost}",
    )


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

VERIFY_NUM_PREFIXES = 16


def verify_program() -> "object":
    """Declared IR of the Blink failover stage (reads precede writes)."""
    from repro.verify.ir import (
        Const, EmitPacket, FieldRef, HeaderDecl, MetaRef, Program,
        RegRead, RegReadModifyWrite, RegWrite, RegisterDecl, RequireValid,
        SetMeta, StageDecl,
    )

    n = VERIFY_NUM_PREFIXES
    program = Program("blink")
    program.registers = [
        RegisterDecl("blink_active_nh", 8, n),
        RegisterDecl("blink_backup_nh", 8, n),
        RegisterDecl("blink_loss_streak", 16, n),
    ]
    program.headers = [
        HeaderDecl("blink_data", tuple(BLINK_DATA_HEADER.fields)),
    ]
    program.stages = [StageDecl("blink", (
        RequireValid("blink_data"),
        SetMeta("prefix", FieldRef("blink_data", "prefix_id")),
        RegRead("blink_active_nh", MetaRef("prefix"), "active"),
        RegRead("blink_backup_nh", MetaRef("prefix"), "backup"),
        RegReadModifyWrite("blink_loss_streak", MetaRef("prefix"),
                           Const(1), "streak"),
        RegWrite("blink_backup_nh", MetaRef("prefix"), MetaRef("active")),
        RegWrite("blink_active_nh", MetaRef("prefix"), MetaRef("backup")),
        EmitPacket(headers=("blink_data",)),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("blink-verify", num_ports=4)
    BlinkDataplane(switch, num_prefixes=VERIFY_NUM_PREFIXES).install()
    return switch
