"""In-network systems that P4Auth protects.

The two headline victims from the paper's evaluation:

- :mod:`repro.systems.hula` — HULA probe-based load balancing (Fig 3,
  Fig 17, Fig 21);
- :mod:`repro.systems.routescout` — RouteScout performance-aware routing
  (Fig 2, Fig 16).

Plus one mini-model per row of Table I (:mod:`repro.systems.blink`,
:mod:`~repro.systems.silkroad`, :mod:`~repro.systems.netcache`,
:mod:`~repro.systems.flowradar`, :mod:`~repro.systems.netwarden`) and the
baseline L3 forwarder the performance evaluation builds on
(:mod:`repro.systems.l3fwd`).
"""

from repro.systems.l3fwd import L3ForwardingDataplane
from repro.systems.hula import (
    HulaConfig,
    HulaDataplane,
    HULA_PROBE_HEADER,
    HULA_DATA_HEADER,
    make_probe,
    make_data_packet,
)
from repro.systems.routescout import (
    RouteScoutConfig,
    RouteScoutDataplane,
    RouteScoutController,
    PathModel,
)
from repro.systems.tableone import TableIScenarioResult
from repro.systems import blink, silkroad, netcache, flowradar, netwarden
from repro.systems.inaggr import (
    AggregationConfig,
    AggregationDataplane,
    AggregationJobResult,
)
from repro.systems.int_telemetry import (
    IntCollector,
    IntConfig,
    IntTelemetryDataplane,
    make_int_probe,
)

__all__ = [
    "L3ForwardingDataplane",
    "HulaConfig",
    "HulaDataplane",
    "HULA_PROBE_HEADER",
    "HULA_DATA_HEADER",
    "make_probe",
    "make_data_packet",
    "RouteScoutConfig",
    "RouteScoutDataplane",
    "RouteScoutController",
    "PathModel",
]
