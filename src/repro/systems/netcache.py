"""NetCache mini-model: in-network key-value caching (Table I).

NetCache [8] serves hot keys from switch registers; query statistics for
uncached keys accumulate in a count-min sketch that the controller
periodically reads and clears, updating the hot-key set (C-DP writes).
Table I's attack alters those hot-key update messages so the cache ends
up holding garbage keys and every query goes to the storage server —
"inflates time to retrieve the hot key value".

Metric: mean retrieval latency over a Zipf-like query workload
(cache hit = 5 us, miss = 100 us server round trip).
"""

from __future__ import annotations

from typing import List

from repro.attacks.control_plane import RegisterRequestTamperer
from repro.crypto.prng import XorShiftPrng
from repro.dataplane.headers import HeaderType
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.sketches import CountMinSketch
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.systems.tableone import TableIScenarioResult, build_deployment, check_mode

NC_QUERY_HEADER = HeaderType("nc_query", [
    ("key", 32),
])

HIT_LATENCY_S = 5e-6
MISS_LATENCY_S = 100e-6
CACHE_SLOTS = 4
KEY_SPACE = 32


class NetCacheDataplane:
    """Hot-key cache slots + query-statistics sketch."""

    def __init__(self, switch: DataplaneSwitch):
        self.switch = switch
        registers = switch.registers
        self.cache_keys = registers.define("nc_cache_keys", 32, CACHE_SLOTS)
        self.cache_vals = registers.define("nc_cache_vals", 64, CACHE_SLOTS)
        self.stats_sketch = CountMinSketch(registers, "nc_sketch",
                                           width=256, depth=2)
        self.hits = 0
        self.misses = 0
        self.latency_total_s = 0.0

    def install(self) -> "NetCacheDataplane":
        self.switch.pipeline.add_stage("netcache", self._stage)
        return self

    def _stage(self, ctx: PipelineContext) -> None:
        if not ctx.packet.has("nc_query"):
            return
        key = ctx.packet.get("nc_query")["key"]
        cached = any(self.cache_keys.read(slot) == key
                     for slot in range(CACHE_SLOTS))
        if cached:
            self.hits += 1
            self.latency_total_s += HIT_LATENCY_S
        else:
            self.misses += 1
            self.latency_total_s += MISS_LATENCY_S
            self.stats_sketch.update(key)
        ctx.emit(2)

    @property
    def mean_latency_s(self) -> float:
        total = self.hits + self.misses
        return self.latency_total_s / total if total else 0.0


def zipf_key(prng: XorShiftPrng, key_space: int = KEY_SPACE,
             skew: float = 1.2) -> int:
    """Draw a key from a Zipf-like distribution (small ids are hot)."""
    u = max(prng.uniform(), 1e-9)
    rank = int(u ** (-1.0 / skew))
    return min(key_space - 1, max(0, rank - 1))


def run_scenario(mode: str, queries: int = 4000,
                 query_period_s: float = 0.001,
                 epochs: int = 4) -> TableIScenarioResult:
    """Table I row "In-network cache / NetCache"."""
    check_mode(mode)
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    netcache = NetCacheDataplane(switch).install()
    client, dataplane = build_deployment(mode, switch, net, sim)
    base = sim.now
    node = net.nodes["s1"]

    # The adversary arrives after the first epoch has populated the
    # cache: the attack then poisons every later hot-key refresh.  With
    # P4Auth the poisoned writes are rejected and the cache retains the
    # last good hot set.
    epoch_s = queries * query_period_s / epochs
    if mode in ("attack", "p4auth"):
        adversary = RegisterRequestTamperer(
            reg_id=switch.registers.id_of("nc_cache_keys"),
            transform=lambda _value: 0xDEAD0000,  # a key nobody queries
        )
        sim.schedule(1.5 * epoch_s, adversary.attach,
                     net.control_channels["s1"])

    # Query workload.
    prng = XorShiftPrng(11)
    from repro.dataplane.packet import Packet
    for index in range(queries):
        packet = Packet()
        packet.push("nc_query", NC_QUERY_HEADER.instantiate(
            key=zipf_key(prng)))
        sim.schedule_at(base + index * query_period_s, node.receive,
                        packet, 1)

    # Controller epochs: read sketch estimates for every key, install the
    # top-K as the hot set, clear the sketch.
    def run_epoch() -> None:
        estimates = {}
        outstanding = {"count": 0}

        def reader(key: int, row: int):
            def callback(ok: bool, value: int) -> None:
                outstanding["count"] -= 1
                if ok:
                    estimates[key] = min(estimates.get(key, 1 << 62), value)
                if outstanding["count"] == 0:
                    finish()
            return callback

        def finish() -> None:
            hot = sorted(estimates, key=estimates.get,
                         reverse=True)[:CACHE_SLOTS]
            for slot, key in enumerate(hot):
                client.write_register("s1", "nc_cache_keys", slot, key)
                client.write_register("s1", "nc_cache_vals", slot,
                                      0x1000 + key)
            netcache.stats_sketch.clear()

        from repro.dataplane.sketches import _hash
        for key in range(KEY_SPACE):
            for row in range(netcache.stats_sketch.depth):
                position = _hash(key, 0x100 + row) % netcache.stats_sketch.width
                outstanding["count"] += 1
                client.read_register("s1", f"nc_sketch_row{row}", position,
                                     reader(key, row))

    for epoch in range(1, epochs):
        sim.schedule(epoch * epoch_s, run_epoch)
    sim.run(until=base + queries * query_period_s + 1.0)

    hit_rate = netcache.hits / max(1, netcache.hits + netcache.misses)
    cache_now = [netcache.cache_keys.read(s) for s in range(CACHE_SLOTS)]
    poisoned = any(key == 0xDEAD0000 for key in cache_now)
    detected = False
    if mode == "p4auth":
        detected = client.stats.nacks_received > 0 or len(client.alerts) > 0
    return TableIScenarioResult(
        system="netcache",
        mode=mode,
        impact_metric="mean_retrieval_latency_us",
        impact_value=netcache.mean_latency_s * 1e6,
        state_poisoned=poisoned,
        detected=detected,
        notes=f"hit_rate={hit_rate:.2f}",
    )


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

def verify_program() -> "object":
    """Declared IR of the NetCache stage (cache probe + sketch update)."""
    from repro.verify.ir import (
        Const, EmitPacket, FieldRef, HashDecl, HashDigest, HeaderDecl,
        MetaRef, Program, RegRead, RegReadModifyWrite, RegisterDecl,
        RequireValid, StageDecl,
    )

    program = Program("netcache")
    program.registers = [
        RegisterDecl("nc_cache_keys", 32, CACHE_SLOTS),
        RegisterDecl("nc_cache_vals", 64, CACHE_SLOTS),
        RegisterDecl("nc_sketch_row0", 32, 256),
        RegisterDecl("nc_sketch_row1", 32, 256),
    ]
    program.headers = [
        HeaderDecl("nc_query", tuple(NC_QUERY_HEADER.fields)),
    ]
    program.hashes = [HashDecl("nc_sketch_hash", 2)]
    program.stages = [StageDecl("netcache", (
        RequireValid("nc_query"),
        RegRead("nc_cache_keys", Const(0), "cached_key"),
        RegRead("nc_cache_vals", Const(0), "cached_val"),
        HashDigest("row0_idx", (FieldRef("nc_query", "key"),),
                   keyed=False, extern="cms_row0"),
        RegReadModifyWrite("nc_sketch_row0", MetaRef("row0_idx"),
                           Const(1), "row0_count"),
        HashDigest("row1_idx", (FieldRef("nc_query", "key"),),
                   keyed=False, extern="cms_row1"),
        RegReadModifyWrite("nc_sketch_row1", MetaRef("row1_idx"),
                           Const(1), "row1_count"),
        EmitPacket(headers=("nc_query",)),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("netcache-verify", num_ports=4)
    NetCacheDataplane(switch).install()
    return switch
