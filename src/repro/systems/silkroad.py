"""SilkRoad mini-model: stateful L4 load balancing (Table I).

SilkRoad [4] pins connections to DIPs in a connection table; during a DIP
pool update, connections that arrived mid-update are tracked in a
*transit* bloom filter so they keep resolving to the old pool.  Once all
pending connections have been committed to the connection table, the
controller clears the transit table (a C-DP message).  Table I's attack
alters that message: here the adversary *injects a forged early clear*,
so pending connections lose their old-pool pinning mid-handshake and get
load-balanced to the wrong DIP (the paper's "wrong VIP during LB").

Metric: fraction of pending connections broken (switched DIP mid-setup).
"""

from __future__ import annotations

from typing import Dict

from repro.core.messages import build_reg_write_request
from repro.dataplane.headers import HeaderType
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.sketches import BloomFilter
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.runtime.plain import build_plain_request
from repro.core.constants import RegOpType
from repro.systems.tableone import TableIScenarioResult, build_deployment, check_mode

SILK_CONN_HEADER = HeaderType("silk_conn", [
    ("flow_id", 32),
    ("syn", 8),
])

OLD_DIP = 10
NEW_DIP = 20


class SilkRoadDataplane:
    """VIP -> DIP selection with connection pinning and a transit table."""

    def __init__(self, switch: DataplaneSwitch):
        self.switch = switch
        registers = switch.registers
        #: 0 = old pool, 1 = new pool.
        self.pool_version = registers.define("silk_pool_version", 8, 1)
        #: Written by the controller to trigger a transit-table clear.
        self.clear_trigger = registers.define("silk_clear_trigger", 8, 1)
        self.transit = BloomFilter(registers, "silk_transit", bits=2048)
        #: Connection table: flow -> pinned DIP (exact-match semantics).
        self.connections: Dict[int, int] = {}
        self.selections: Dict[int, int] = {}  # flow -> first DIP chosen
        self.broken_flows = set()

    def install(self) -> "SilkRoadDataplane":
        self.switch.pipeline.add_stage("silkroad", self._stage)
        return self

    def _current_dip(self) -> int:
        return NEW_DIP if self.pool_version.read(0) else OLD_DIP

    def _stage(self, ctx: PipelineContext) -> None:
        if not ctx.packet.has("silk_conn"):
            return
        # Controller-triggered transit clear (the attacked message).
        if self.clear_trigger.read(0):
            self.transit.clear()
            self.clear_trigger.write(0, 0)
        conn = ctx.packet.get("silk_conn")
        flow = conn["flow_id"]
        if flow in self.connections:
            dip = self.connections[flow]
        elif flow in self.transit:
            # Mid-update connection: keep resolving to the old pool until
            # the controller commits it.
            dip = OLD_DIP
        else:
            dip = self._current_dip()
            if conn["syn"]:
                self.connections[flow] = dip
        first = self.selections.setdefault(flow, dip)
        if dip != first:
            self.broken_flows.add(flow)
        ctx.emit(2)

    def begin_migration(self) -> None:
        """DP-side of a pool update: new version + track pending flows."""
        self.pool_version.write(0, 1)

    def note_pending(self, flow_id: int) -> None:
        """A connection that arrived mid-update enters the transit table."""
        self.transit.insert(flow_id)


def run_scenario(mode: str, pending_flows: int = 40,
                 packets_per_flow: int = 5) -> TableIScenarioResult:
    """Table I row "LB / SilkRoad": wrong DIP during load balancing."""
    check_mode(mode)
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    silk = SilkRoadDataplane(switch).install()
    client, dataplane = build_deployment(mode, switch, net, sim)
    base = sim.now
    node = net.nodes["s1"]

    # Migration begins; pending connections arrive and are tracked.
    silk.begin_migration()
    for flow in range(pending_flows):
        silk.note_pending(flow)

    from repro.dataplane.packet import Packet

    def send(flow: int, seq: int, at: float) -> None:
        packet = Packet()
        packet.push("silk_conn", SILK_CONN_HEADER.instantiate(
            flow_id=flow, syn=1 if seq == 0 else 0))
        sim.schedule_at(base + at, node.receive, packet, 1)

    # Each pending flow sends its handshake packets over ~2 seconds.
    for flow in range(pending_flows):
        for seq in range(packets_per_flow):
            send(flow, seq, 0.01 + flow * 0.01 + seq * 0.4)

    # The adversary injects a forged "clear the transit table" at 0.2 s —
    # long before the legitimate clear at 3 s.
    if mode in ("attack", "p4auth"):
        reg_id = switch.registers.id_of("silk_clear_trigger")
        if mode == "attack":
            forged = build_plain_request(RegOpType.WRITE_REQ, reg_id, 0, 1,
                                         seq_num=0xFFFF)
        else:
            forged = build_reg_write_request(reg_id, 0, 1, seq_num=0xFFFF)
            forged.get("p4auth")["digest"] = 0xDEADBEEF  # no key: a guess
        sim.schedule(0.2, node.receive, forged, DataplaneSwitch.CPU_PORT)

    # The legitimate clear, after all pending connections committed.
    def commit_and_clear() -> None:
        for flow in range(pending_flows):
            silk.connections.setdefault(flow, OLD_DIP)
        client.write_register("s1", "silk_clear_trigger", 0, 1)

    sim.schedule(3.0, commit_and_clear)
    sim.run(until=base + 5.0)

    broken_fraction = len(silk.broken_flows) / max(1, pending_flows)
    detected = False
    if mode == "p4auth":
        detected = (dataplane.stats.digest_fail_cdp > 0
                    or len(client.alerts) > 0)
    return TableIScenarioResult(
        system="silkroad",
        mode=mode,
        impact_metric="broken_connection_fraction",
        impact_value=broken_fraction,
        state_poisoned=len(silk.broken_flows) > 0,
        detected=detected,
        notes=f"broken={len(silk.broken_flows)}/{pending_flows}",
    )


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

def verify_program() -> "object":
    """Declared IR of the SilkRoad stage."""
    from repro.verify.ir import (
        Const, EmitPacket, FieldRef, HashDecl, HashDigest, HeaderDecl,
        MetaRef, Program, RegRead, RegWrite, RegisterDecl, RequireValid,
        StageDecl,
    )

    program = Program("silkroad")
    program.registers = [
        RegisterDecl("silk_pool_version", 8, 1),
        RegisterDecl("silk_clear_trigger", 8, 1),
        RegisterDecl("silk_transit", 1, 2048),
    ]
    program.headers = [
        HeaderDecl("silk_conn", tuple(SILK_CONN_HEADER.fields)),
    ]
    program.hashes = [HashDecl("silk_bloom_hash", 2)]
    program.stages = [StageDecl("silkroad", (
        RequireValid("silk_conn"),
        RegRead("silk_clear_trigger", Const(0), "clear"),
        RegWrite("silk_clear_trigger", Const(0), Const(0, 8)),
        RegRead("silk_pool_version", Const(0), "pool_ver"),
        HashDigest("bloom_idx", (FieldRef("silk_conn", "flow_id"),),
                   keyed=False, extern="bloom"),
        RegRead("silk_transit", MetaRef("bloom_idx"), "in_transit"),
        EmitPacket(headers=("silk_conn",)),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("silkroad-verify", num_ports=4)
    SilkRoadDataplane(switch).install()
    return switch
