"""Baseline destination-based L3 port forwarding (paper §IX-B).

The performance evaluation's base program: "destination-based layer-3
port forwarding with two match-action tables and one register".  We model
it faithfully: an LPM route table picks the egress port, an exact-match
rewrite table models L2 adjacency resolution, and a register counts
per-index packets.
"""

from __future__ import annotations

from typing import Optional

from repro.dataplane.headers import HeaderType
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.switch import DataplaneSwitch
from repro.dataplane.tables import MatchActionTable, MatchKind, TableEntry

#: Minimal IPv4-ish header for the forwarding path.
IPV4_HEADER = HeaderType("ipv4", [
    ("src", 32),
    ("dst", 32),
    ("ttl", 8),
    ("proto", 8),
    ("flow_id", 16),
])


class L3ForwardingDataplane:
    """The two-table, one-register L3 forwarder."""

    def __init__(self, switch: DataplaneSwitch, stats_size: int = 256):
        self.switch = switch
        self.route_table = MatchActionTable(
            "ipv4_lpm", [("dst", MatchKind.LPM, 32)], max_entries=12288
        )
        self.rewrite_table = MatchActionTable(
            "l2_rewrite", [("port", MatchKind.EXACT, 16)], max_entries=16384
        )
        switch.add_table(self.route_table)
        switch.add_table(self.rewrite_table)
        self.stats = switch.registers.define("flow_stats", 32, stats_size)
        self._egress: Optional[int] = None
        self.route_table.register_action("set_egress", self._set_egress)
        self.route_table.register_action("drop", self._route_drop)
        self.route_table.set_default("drop")
        self.rewrite_table.register_action("rewrite", lambda **_: None)
        self.rewrite_table.set_default("rewrite")
        self._dropped = False

    def install(self) -> "L3ForwardingDataplane":
        self.switch.pipeline.add_stage("l3fwd", self._stage)
        return self

    # -- control-plane configuration -----------------------------------------

    def add_route(self, prefix: int, prefix_len: int, egress_port: int) -> None:
        """Install an LPM route: dst/prefix_len -> egress_port."""
        self.route_table.insert(TableEntry(
            key=((prefix, prefix_len),), action="set_egress",
            params={"port": egress_port},
        ))

    # -- actions ---------------------------------------------------------------

    def _set_egress(self, port: int) -> None:
        self._egress = port
        self._dropped = False

    def _route_drop(self) -> None:
        self._egress = None
        self._dropped = True

    # -- pipeline stage ----------------------------------------------------------

    def _stage(self, ctx: PipelineContext) -> None:
        packet = ctx.packet
        if not packet.has("ipv4"):
            return
        ipv4 = packet.get("ipv4")
        if ipv4["ttl"] == 0:
            ctx.drop("ttl exceeded")
            return
        ipv4["ttl"] -= 1
        self._egress = None
        self.route_table.lookup(ipv4["dst"])
        if self._egress is None:
            ctx.drop("no route")
            return
        self.rewrite_table.lookup(self._egress)
        self.stats.read_modify_write(
            ipv4["flow_id"] % self.stats.size, lambda v: v + 1
        )
        ctx.emit(self._egress)


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

def verify_program() -> "object":
    """Declared IR of the forwarder, mirroring the constructor defaults."""
    from repro.verify.ir import (
        ApplyTable, BinOp, Const, EmitPacket, FieldRef, HeaderDecl,
        MetaRef, Program, RegReadModifyWrite, RegisterDecl, RequireValid,
        SetField, SetMeta, StageDecl, TableDecl,
    )

    program = Program("l3fwd")
    program.registers = [RegisterDecl("flow_stats", 32, 256)]
    program.tables = [
        TableDecl("ipv4_lpm", key_bits=32, entries=12288, match_kind="lpm"),
        TableDecl("l2_rewrite", key_bits=16, entries=16384,
                  match_kind="exact"),
    ]
    program.headers = [HeaderDecl("ipv4", tuple(IPV4_HEADER.fields))]
    program.stages = [StageDecl("l3fwd", (
        RequireValid("ipv4"),
        SetField("ipv4", "ttl", BinOp("sub", (
            FieldRef("ipv4", "ttl"), Const(1, 8)))),
        SetMeta("egress_port", Const(0, 16)),
        ApplyTable("ipv4_lpm", (FieldRef("ipv4", "dst"),)),
        ApplyTable("l2_rewrite", (MetaRef("egress_port"),)),
        RegReadModifyWrite("flow_stats", FieldRef("ipv4", "flow_id"),
                           Const(1), "flow_count"),
        EmitPacket(headers=("ipv4",)),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("l3fwd-verify", num_ports=4)
    L3ForwardingDataplane(switch).install()
    return switch
