"""Shared harness for the Table I attack-impact scenarios.

Each Table I row (Blink, SilkRoad, NetCache, FlowRadar, NetWarden) is a
mini-model with the same three-mode contract:

- ``baseline`` — unauthenticated DP-Reg-RW control stack, no adversary;
- ``attack``   — same stack plus the row's C-DP adversary;
- ``p4auth``   — P4Auth-protected stack against the same adversary.

Every scenario returns a :class:`TableIScenarioResult` whose
``impact_value`` is the row's headline metric (delivery rate, wrong-DIP
fraction, retrieval latency, count error, detection rate) and whose
``state_poisoned`` / ``detected`` flags capture the qualitative claim:
without P4Auth the state is silently poisoned; with it the tamper is
rejected and surfaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.runtime.plain import PlainController, PlainRegOpDataplane

MODES = ("baseline", "attack", "p4auth")


@dataclass
class TableIScenarioResult:
    system: str
    mode: str
    impact_metric: str
    impact_value: float
    state_poisoned: bool
    detected: bool
    notes: str = ""


def check_mode(mode: str) -> None:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")


def build_deployment(mode: str, switch: DataplaneSwitch,
                     net: Network, sim: EventSimulator,
                     k_seed: int = 0x7AB1E1) -> Tuple[object, Optional[P4AuthDataplane]]:
    """Attach the mode's control stack to an already-programmed switch.

    Returns ``(client, p4auth_dataplane_or_None)``.  Must be called after
    the system's registers and stages are installed (the stack's verify
    stage wraps the existing pipeline and maps the existing registers).
    """
    check_mode(mode)
    if mode == "p4auth":
        dataplane = P4AuthDataplane(switch, k_seed=k_seed).install()
        dataplane.map_all_registers()
        client = P4AuthController(net)
        client.provision(dataplane)
        client.kmp.local_key_init(switch.name)
        sim.run(until=sim.now + 0.05)
        return client, dataplane
    plain = PlainRegOpDataplane(switch).install()
    plain.map_all_registers()
    client = PlainController(net)
    client.provision(switch)
    return client, None
