"""NetWarden mini-model: covert-channel mitigation (Table I).

NetWarden [5] has the data plane report inter-packet delays (IPDs) of
suspicious connections to the controller, which classifies timing covert
channels (abnormally regular IPDs -> low variance) and writes block
decisions back into the data plane.  Table I's attack alters the DP -> C
report so a covert connection's IPDs look normal and it evades detection.

Scenario: 10 benign connections (noisy IPDs) and 2 covert connections
(metronome-regular IPDs).  The DP aggregates per-connection IPD mean and
variance in registers; the controller reads them and blocks connections
whose variance falls below a threshold.  The adversary inflates the
reported variance for the covert connections.  With P4Auth, the tampered
report fails verification and the controller fails closed: a connection
whose statistics cannot be verified is blocked pending investigation.

Metric: covert-connection detection rate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.control_plane import RegisterResponseTamperer
from repro.crypto.prng import XorShiftPrng
from repro.dataplane.headers import HeaderType
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.systems.tableone import TableIScenarioResult, build_deployment, check_mode

NW_PKT_HEADER = HeaderType("nw_pkt", [
    ("conn_id", 16),
    ("seq", 32),
])

NUM_CONNECTIONS = 12
COVERT_CONNECTIONS = (3, 8)
#: Variance (us^2) below which a connection is classified as covert.
VARIANCE_THRESHOLD = 400


class NetWardenDataplane:
    """Per-connection IPD statistics + block bitmap."""

    def __init__(self, switch: DataplaneSwitch,
                 num_connections: int = NUM_CONNECTIONS):
        self.switch = switch
        registers = switch.registers
        self.last_arrival = registers.define("nw_last_arrival_us", 64,
                                             num_connections)
        self.ipd_count = registers.define("nw_ipd_count", 32, num_connections)
        self.ipd_sum = registers.define("nw_ipd_sum", 64, num_connections)
        self.ipd_sq_sum = registers.define("nw_ipd_sq_sum", 64,
                                           num_connections)
        self.blocked = registers.define("nw_blocked", 8, num_connections)
        self.dropped_blocked = 0

    def install(self) -> "NetWardenDataplane":
        self.switch.pipeline.add_stage("netwarden", self._stage)
        return self

    def _stage(self, ctx: PipelineContext) -> None:
        if not ctx.packet.has("nw_pkt"):
            return
        conn = ctx.packet.get("nw_pkt")["conn_id"]
        if self.blocked.read(conn):
            self.dropped_blocked += 1
            ctx.drop("netwarden: connection blocked")
            return
        now_us = int(ctx.now * 1e6)
        last = self.last_arrival.read(conn)
        if last:
            ipd = now_us - last
            self.ipd_count.read_modify_write(conn, lambda v: v + 1)
            self.ipd_sum.read_modify_write(conn, lambda v: v + ipd)
            self.ipd_sq_sum.read_modify_write(conn, lambda v: v + ipd * ipd)
        self.last_arrival.write(conn, now_us)
        ctx.emit(2)

    def variance(self, conn: int) -> float:
        """Offline helper used by tests (controller computes from reads)."""
        count = self.ipd_count.read(conn)
        if count < 2:
            return float("inf")
        mean = self.ipd_sum.read(conn) / count
        return self.ipd_sq_sum.read(conn) / count - mean * mean


def run_scenario(mode: str, packets_per_conn: int = 40,
                 seed: int = 9) -> TableIScenarioResult:
    """Table I row "IDS-IPS / NetWarden": evasion of detection."""
    check_mode(mode)
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    netwarden = NetWardenDataplane(switch).install()
    client, dataplane = build_deployment(mode, switch, net, sim)
    base = sim.now
    node = net.nodes["s1"]
    prng = XorShiftPrng(seed)

    if mode in ("attack", "p4auth"):
        sq_sum_id = switch.registers.id_of("nw_ipd_sq_sum")
        # Inflate the covert connections' reported squared-IPD sums so the
        # computed variance looks benign.
        adversary = RegisterResponseTamperer(
            targets=[(sq_sum_id, conn) for conn in COVERT_CONNECTIONS],
            transform=lambda value: value * 3,
        )
        adversary.attach(net.control_channels["s1"])

    # Traffic: benign connections jitter (+/- 50%), covert ones tick
    # every 1000 us exactly.
    from repro.dataplane.packet import Packet
    for conn in range(NUM_CONNECTIONS):
        at = 0.001 * (conn + 1)
        for seq in range(packets_per_conn):
            if conn in COVERT_CONNECTIONS:
                at += 0.001
            else:
                at += 0.001 * (0.5 + prng.uniform())
            packet = Packet()
            packet.push("nw_pkt", NW_PKT_HEADER.instantiate(conn_id=conn,
                                                            seq=seq))
            sim.schedule_at(base + at, node.receive, packet, 1)

    # Controller sweep after the traffic: read stats, classify, block.
    stats: Dict[int, Dict[str, int]] = {}
    unverified: List[int] = []

    def sweep() -> None:
        def reader(conn: int, field: str):
            def callback(ok: bool, value: int) -> None:
                if ok:
                    stats.setdefault(conn, {})[field] = value
            return callback

        for conn in range(NUM_CONNECTIONS):
            client.read_register("s1", "nw_ipd_count", conn,
                                 reader(conn, "count"))
            client.read_register("s1", "nw_ipd_sum", conn,
                                 reader(conn, "sum"))
            client.read_register("s1", "nw_ipd_sq_sum", conn,
                                 reader(conn, "sq_sum"))

    def classify() -> None:
        for conn in range(NUM_CONNECTIONS):
            fields = stats.get(conn, {})
            if len(fields) < 3:
                # A report failed verification: fail closed (P4Auth path).
                unverified.append(conn)
                client.write_register("s1", "nw_blocked", conn, 1)
                continue
            count = fields["count"]
            if count < 2:
                continue
            mean = fields["sum"] / count
            variance = fields["sq_sum"] / count - mean * mean
            if variance < VARIANCE_THRESHOLD:
                client.write_register("s1", "nw_blocked", conn, 1)

    end_of_traffic = base + 0.001 * (NUM_CONNECTIONS + 2) \
        + packets_per_conn * 0.002
    sim.schedule_at(end_of_traffic, sweep)
    sim.schedule_at(end_of_traffic + 1.0, classify)
    sim.run(until=end_of_traffic + 3.0)

    blocked = [conn for conn in range(NUM_CONNECTIONS)
               if netwarden.blocked.read(conn)]
    covert_blocked = sum(1 for conn in COVERT_CONNECTIONS if conn in blocked)
    benign_blocked = [conn for conn in blocked
                      if conn not in COVERT_CONNECTIONS]
    detection_rate = covert_blocked / len(COVERT_CONNECTIONS)
    detected = mode == "p4auth" and client.stats.tampered_responses > 0
    return TableIScenarioResult(
        system="netwarden",
        mode=mode,
        impact_metric="covert_detection_rate",
        impact_value=detection_rate,
        state_poisoned=(mode != "baseline" and detection_rate < 1.0),
        detected=detected,
        notes=(f"blocked={blocked} unverified={unverified} "
               f"benign_blocked={benign_blocked}"),
    )


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

def verify_program() -> "object":
    """Declared IR of the NetWarden IPD-statistics stage."""
    from repro.verify.ir import (
        BinOp, Const, EmitPacket, FieldRef, HeaderDecl, MetaRef, Program,
        RegRead, RegReadModifyWrite, RegWrite, RegisterDecl, RequireValid,
        SetMeta, StageDecl,
    )

    n = NUM_CONNECTIONS
    program = Program("netwarden")
    program.registers = [
        RegisterDecl("nw_last_arrival_us", 64, n),
        RegisterDecl("nw_ipd_count", 32, n),
        RegisterDecl("nw_ipd_sum", 64, n),
        RegisterDecl("nw_ipd_sq_sum", 64, n),
        RegisterDecl("nw_blocked", 8, n),
    ]
    program.headers = [HeaderDecl("nw_pkt", tuple(NW_PKT_HEADER.fields))]
    program.stages = [StageDecl("netwarden", (
        RequireValid("nw_pkt"),
        SetMeta("conn", FieldRef("nw_pkt", "conn_id")),
        SetMeta("now_us", Const(0, 64)),
        RegRead("nw_blocked", MetaRef("conn"), "blocked"),
        RegRead("nw_last_arrival_us", MetaRef("conn"), "last"),
        SetMeta("ipd", BinOp("sub", (MetaRef("now_us"), MetaRef("last")))),
        RegReadModifyWrite("nw_ipd_count", MetaRef("conn"), Const(1),
                           "ipd_n"),
        RegReadModifyWrite("nw_ipd_sum", MetaRef("conn"), MetaRef("ipd"),
                           "ipd_total"),
        RegReadModifyWrite("nw_ipd_sq_sum", MetaRef("conn"),
                           MetaRef("ipd"), "ipd_sq_total"),
        RegWrite("nw_last_arrival_us", MetaRef("conn"), MetaRef("now_us")),
        EmitPacket(headers=("nw_pkt",)),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("netwarden-verify", num_ports=4)
    NetWardenDataplane(switch).install()
    return switch
