"""In-network aggregation victim (the paper's Attack 2, JCT impact).

§II-A's Attack 2 notes that in-network aggregation systems (SwitchML/ATP
style) process control/data contributions from workers entirely in the
data plane, and that "altering the content in control messages can trick
the packet-processing algorithm, leading to ... inflated job completion
times (JCT)".

Model: W workers each send one contribution per chunk to an aggregation
switch; the switch sums contributions in per-chunk registers and, once
all W arrived, emits the aggregate toward the parameter server.  The PS
validates each aggregate against a checksum the workers agreed on
out-of-band; a corrupted aggregate forces the whole chunk to be re-sent
(one extra round), inflating JCT.

- **attack**: an on-link MitM rewrites one worker's contributions; the
  corruption is invisible to the switch, every affected chunk fails PS
  validation and repeats — possibly forever while the MitM persists (we
  bound retries).
- **p4auth**: contributions are DP-DP protected; tampered ones are
  dropped at the switch, the aggregation times out for that worker, and
  only the *missing* contribution is re-sent.  JCT grows slightly; the
  result is always correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dataplane.headers import HeaderType
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.switch import DataplaneSwitch

AGG_HEADER = HeaderType("agg_update", [
    ("job_id", 16),
    ("chunk_id", 16),
    ("worker_id", 8),
    ("value", 32),
])

AGG_RESULT_HEADER = HeaderType("agg_result", [
    ("job_id", 16),
    ("chunk_id", 16),
    ("value", 32),
])


def make_contribution(job_id: int, chunk_id: int, worker_id: int,
                      value: int) -> Packet:
    packet = Packet()
    packet.push("agg_update", AGG_HEADER.instantiate(
        job_id=job_id, chunk_id=chunk_id, worker_id=worker_id,
        value=value & 0xFFFFFFFF))
    return packet


@dataclass
class AggregationConfig:
    num_workers: int = 4
    #: Egress port toward the parameter server.
    ps_port: int = 1
    max_chunks: int = 256


class AggregationDataplane:
    """SwitchML/ATP-style in-switch sum aggregation."""

    def __init__(self, switch: DataplaneSwitch,
                 config: Optional[AggregationConfig] = None):
        self.switch = switch
        self.config = config or AggregationConfig()
        registers = switch.registers
        size = self.config.max_chunks
        self.agg_sum = registers.define("agg_sum", 64, size)
        self.agg_count = registers.define("agg_count", 16, size)
        self.agg_bitmap = registers.define("agg_bitmap", 32, size)
        self.aggregates_emitted = 0

    def install(self) -> "AggregationDataplane":
        self.switch.pipeline.add_stage("aggregate", self._stage)
        return self

    def _stage(self, ctx: PipelineContext) -> None:
        if not ctx.packet.has("agg_update"):
            return
        update = ctx.packet.get("agg_update")
        chunk = update["chunk_id"] % self.config.max_chunks
        worker_bit = 1 << (update["worker_id"] % 32)
        bitmap = self.agg_bitmap.read(chunk)
        if bitmap & worker_bit:
            return  # duplicate contribution (retransmit overlap): ignore
        self.agg_bitmap.write(chunk, bitmap | worker_bit)
        self.agg_sum.read_modify_write(chunk, lambda v: v + update["value"])
        count = self.agg_count.read_modify_write(chunk, lambda v: v + 1)
        if count >= self.config.num_workers:
            result = Packet()
            result.push("agg_result", AGG_RESULT_HEADER.instantiate(
                job_id=update["job_id"], chunk_id=update["chunk_id"],
                value=self.agg_sum.read(chunk) & 0xFFFFFFFF))
            self.agg_sum.write(chunk, 0)
            self.agg_count.write(chunk, 0)
            self.agg_bitmap.write(chunk, 0)
            self.aggregates_emitted += 1
            ctx.emit(self.config.ps_port, result)

    def reset_chunk(self, chunk: int) -> None:
        """PS-triggered reset before a chunk retry."""
        self.agg_sum.write(chunk, 0)
        self.agg_count.write(chunk, 0)
        self.agg_bitmap.write(chunk, 0)

    def missing_workers(self, chunk: int) -> List[int]:
        """Which workers' contributions are outstanding for a chunk."""
        bitmap = self.agg_bitmap.read(chunk % self.config.max_chunks)
        return [worker for worker in range(self.config.num_workers)
                if not bitmap & (1 << worker)]


@dataclass
class AggregationJobResult:
    mode: str
    chunks: int
    correct_chunks: int
    rounds_used: int
    jct_rounds: float
    tampered: int = 0
    dropped_at_switch: int = 0
    alerts: int = 0
    #: Chunks abandoned after exhausting retries (silent-failure bound).
    failed_chunks: int = 0
    notes: str = ""


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

def verify_program() -> "object":
    """Declared IR of the aggregation stage.

    The result value comes from the atomic ``RegReadModifyWrite`` dst
    (the stateful ALU returns the updated sum), not from a plain read
    after the write — hardware has no second access to the array in the
    same stage (invariant INV002).
    """
    from repro.verify.ir import (
        BinOp, Const, EmitPacket, FieldRef, HeaderDecl, MetaRef, Program,
        RegRead, RegReadModifyWrite, RegWrite, RegisterDecl, RequireValid,
        SetField, SetMeta, StageDecl,
    )

    size = AggregationConfig().max_chunks
    program = Program("inaggr")
    program.registers = [
        RegisterDecl("agg_sum", 64, size),
        RegisterDecl("agg_count", 16, size),
        RegisterDecl("agg_bitmap", 32, size),
    ]
    program.headers = [
        HeaderDecl("agg_update", tuple(AGG_HEADER.fields)),
        HeaderDecl("agg_result", tuple(AGG_RESULT_HEADER.fields)),
    ]
    program.stages = [StageDecl("aggregate", (
        RequireValid("agg_update"),
        RequireValid("agg_result"),
        SetMeta("chunk", FieldRef("agg_update", "chunk_id")),
        RegRead("agg_bitmap", MetaRef("chunk"), "bitmap"),
        RegWrite("agg_bitmap", MetaRef("chunk"), BinOp("or", (
            MetaRef("bitmap"), Const(1)))),
        RegReadModifyWrite("agg_sum", MetaRef("chunk"),
                           FieldRef("agg_update", "value"), "sum_new"),
        RegReadModifyWrite("agg_count", MetaRef("chunk"), Const(1),
                           "count_new"),
        SetField("agg_result", "job_id", FieldRef("agg_update", "job_id")),
        SetField("agg_result", "chunk_id",
                 FieldRef("agg_update", "chunk_id")),
        SetField("agg_result", "value", MetaRef("sum_new")),
        EmitPacket(headers=("agg_result",)),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("inaggr-verify", num_ports=4)
    AggregationDataplane(switch).install()
    return switch
