"""In-band network telemetry (INT) victim — the secINT scenario.

The paper repeatedly cites INT manipulation (secINT [28], INT [22]) as a
DP-DP threat: telemetry packets cross the fabric collecting per-hop
metadata entirely in the data plane, and an on-path MitM can rewrite an
upstream hop's records to hide congestion from the operator.

Model: an INT probe starts at a source switch and crosses a chain of
transit switches; each hop appends an 8-byte record (switch id, hop
latency, queue depth, egress port) to the packet payload — which is
exactly the "variable list of arguments" the P4Auth digest covers, so
with P4Auth every record is integrity-protected link by link.  The sink
delivers to a collector that reconstructs the path and its latency
profile.

Attack (Table I "Measurement" spirit): the MitM on one link rewrites the
latency/queue fields of the records accumulated so far, hiding an
upstream bottleneck.  Unprotected, the collector sees a healthy path;
with P4Auth, the first honest downstream switch drops the tampered probe
and alerts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dataplane.headers import HeaderType
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.switch import DataplaneSwitch

INT_HEADER = HeaderType("int_probe", [
    ("flow_id", 32),
    ("hop_count", 8),
    ("max_hops", 8),
])

#: One per-hop record: switch id, hop latency (us), queue depth, port.
RECORD_FORMAT = "<HHHH"
RECORD_BYTES = struct.calcsize(RECORD_FORMAT)


def make_int_probe(flow_id: int, max_hops: int = 16) -> Packet:
    packet = Packet()
    packet.push("int_probe", INT_HEADER.instantiate(
        flow_id=flow_id, hop_count=0, max_hops=max_hops))
    return packet


@dataclass
class HopRecord:
    switch_id: int
    latency_us: int
    queue_depth: int
    egress_port: int


def parse_records(packet: Packet) -> List[HopRecord]:
    """Decode the accumulated per-hop records from the probe payload."""
    records = []
    payload = packet.payload
    for offset in range(0, len(payload) - len(payload) % RECORD_BYTES,
                        RECORD_BYTES):
        fields = struct.unpack_from(RECORD_FORMAT, payload, offset)
        records.append(HopRecord(*fields))
    return records


@dataclass
class IntConfig:
    """Per-switch INT configuration."""

    switch_id: int
    #: Probe routing: ingress port -> egress port (None = sink: deliver
    #: to the collector port instead).
    routes: Dict[int, Optional[int]] = field(default_factory=dict)
    collector_port: int = 2
    #: Models this hop's latency/queue for a probe (time, flow id).
    latency_us: Callable[[float, int], int] = lambda now, flow: 20
    queue_depth: Callable[[float, int], int] = lambda now, flow: 4


class IntTelemetryDataplane:
    """One INT hop: append this switch's record, forward the probe."""

    def __init__(self, switch: DataplaneSwitch, config: IntConfig):
        self.switch = switch
        self.config = config
        self.probes_processed = 0
        self.probes_delivered = 0

    def install(self) -> "IntTelemetryDataplane":
        self.switch.pipeline.add_stage("int", self._stage)
        return self

    def _stage(self, ctx: PipelineContext) -> None:
        if not ctx.packet.has("int_probe"):
            return
        header = ctx.packet.get("int_probe")
        if header["hop_count"] >= header["max_hops"]:
            ctx.drop("INT hop limit exceeded")
            return
        self.probes_processed += 1
        egress = self.config.routes.get(ctx.ingress_port)
        flow_id = header["flow_id"]
        record = struct.pack(
            RECORD_FORMAT,
            self.config.switch_id & 0xFFFF,
            self.config.latency_us(ctx.now, flow_id) & 0xFFFF,
            self.config.queue_depth(ctx.now, flow_id) & 0xFFFF,
            (egress if egress is not None
             else self.config.collector_port) & 0xFFFF,
        )
        ctx.packet.payload = ctx.packet.payload + record
        header["hop_count"] += 1
        if egress is None:
            self.probes_delivered += 1
            ctx.emit(self.config.collector_port)
        else:
            ctx.emit(egress)


@dataclass
class IntCollector:
    """Sink-side analytics: path reconstruction and latency profile."""

    probes: List[List[HopRecord]] = field(default_factory=list)

    def ingest(self, packet: Packet, _now: float) -> None:
        if packet.has("int_probe"):
            self.probes.append(parse_records(packet))

    def max_hop_latency_us(self) -> int:
        """The worst per-hop latency seen — the congestion signal."""
        return max((record.latency_us
                    for records in self.probes for record in records),
                   default=0)

    def path_of_last_probe(self) -> List[int]:
        if not self.probes:
            return []
        return [record.switch_id for record in self.probes[-1]]

    def mean_path_latency_us(self) -> float:
        if not self.probes:
            return 0.0
        totals = [sum(r.latency_us for r in records)
                  for records in self.probes]
        return sum(totals) / len(totals)


# ---------------------------------------------------------------------------
# static-verification metadata (consumed by repro.verify)
# ---------------------------------------------------------------------------

def verify_program() -> "object":
    """Declared IR of the INT hop: append a record, bump the hop count."""
    from repro.verify.ir import (
        BinOp, Const, EmitPacket, FieldRef, HeaderDecl, MetaRef,
        ExportTelemetry, Program, RequireValid, SetField, SetMeta,
        StageDecl,
    )

    program = Program("int")
    program.headers = [
        HeaderDecl("int_probe", tuple(INT_HEADER.fields)),
    ]
    # Per-hop record fields ride in the payload; claim their PHV scratch.
    program.phv_container_bits = RECORD_BYTES * 8
    program.stages = [StageDecl("int", (
        RequireValid("int_probe"),
        SetMeta("hop_latency_us", Const(20, 16)),
        SetMeta("queue_depth", Const(4, 16)),
        SetField("int_probe", "hop_count", BinOp("add", (
            FieldRef("int_probe", "hop_count"), Const(1, 8)))),
        ExportTelemetry(fields=(
            MetaRef("hop_latency_us"), MetaRef("queue_depth"),
            FieldRef("int_probe", "flow_id"))),
        EmitPacket(headers=("int_probe",)),
    ))]
    return program


def build_verify_switch() -> DataplaneSwitch:
    """A live instance matching :func:`verify_program`, for cross-checks."""
    switch = DataplaneSwitch("int-verify", num_ports=4)
    IntTelemetryDataplane(switch, IntConfig(switch_id=1)).install()
    return switch
