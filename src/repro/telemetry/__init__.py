"""Structured tracing, metrics, and profiling for the whole reproduction.

One :class:`Telemetry` object bundles the three observability surfaces:

- :attr:`Telemetry.metrics` — a :class:`~repro.telemetry.metrics.MetricRegistry`
  of counters/gauges/histograms (Prometheus-style text export);
- :attr:`Telemetry.tracer` — a :class:`~repro.telemetry.tracer.Tracer` of
  virtual-time-stamped structured events (JSONL export, ring-buffer
  retention);
- :meth:`Telemetry.span` — wall-clock profiling into the
  ``profile_seconds`` histogram.

Pass a ``Telemetry(enabled=True)`` instance into
:class:`~repro.net.simulator.EventSimulator` (directly or through the
topology builders / experiment drivers); the network, switches,
controller, KMP, and runtime stacks all discover it from there.  When no
instance is supplied, everything shares :data:`NULL_TELEMETRY`, whose
mutators are no-ops — the fast path the overhead benchmark bounds.

Trace-event vocabulary (see DESIGN.md "Observability"):
``packet.drop``, ``link.up``, ``link.down``, ``digest.verify_fail``,
``replay.reject``, ``alert.raised``, ``kmp.exchange``,
``kmp.exchange_abandoned``, ``controller.packet_in``,
``controller.tamper``, ``controller.request_abandoned``,
``runtime.request_abandoned``, ``sim.budget_exhausted``, and the
``fault.*`` family emitted by :mod:`repro.faults` (``fault.armed``,
``fault.disarmed``, ``fault.injected``, ``fault.node_crash``,
``fault.node_restart``, ``fault.blackout``, ``fault.clock_skew``).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.telemetry.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.tracer import (
    NULL_SPAN,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
)
from repro.telemetry.exporters import render_prometheus, write_jsonl

#: Buckets for wall-clock profiling spans (seconds of host time).
PROFILE_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Buckets for per-request completion times (virtual seconds) — the
#: Fig 18/19 RCT scale: C-DP round trips land around a millisecond.
RCT_BUCKETS: Tuple[float, ...] = (
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2,
)

#: Buckets for KMP operation round-trip times (virtual seconds).
KMP_RTT_BUCKETS: Tuple[float, ...] = (
    5e-4, 1e-3, 1.5e-3, 2e-3, 3e-3, 5e-3, 1e-2,
)


class Telemetry:
    """The bundle a run threads through every instrumented layer."""

    __slots__ = ("enabled", "metrics", "tracer")

    def __init__(self, enabled: bool = True, trace_capacity: int = 65536,
                 clock: Optional[Callable[[], float]] = None):
        self.enabled = enabled
        self.metrics = MetricRegistry(enabled=enabled)
        self.tracer = (Tracer(clock=clock, capacity=trace_capacity)
                       if enabled else NullTracer())

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Stamp future trace events with this time source."""
        self.tracer.bind_clock(clock)

    def span(self, name: str):
        """Wall-clock profile a code region into ``profile_seconds``."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self.metrics.histogram(
            "profile_seconds", buckets=PROFILE_BUCKETS, span=name))

    def render_prometheus(self) -> str:
        return render_prometheus(self.metrics)

    def __repr__(self) -> str:
        return (f"Telemetry(enabled={self.enabled}, "
                f"metrics={len(self.metrics)}, events={len(self.tracer)})")


#: The shared disabled instance every component defaults to.
NULL_TELEMETRY = Telemetry(enabled=False)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "KMP_RTT_BUCKETS",
    "MetricRegistry",
    "NULL_TELEMETRY",
    "RCT_BUCKETS",
    "NullTracer",
    "PROFILE_BUCKETS",
    "Span",
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "render_prometheus",
    "write_jsonl",
]
