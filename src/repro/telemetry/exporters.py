"""Exporters: Prometheus-style text rendering and JSONL trace dumps.

``render_prometheus`` emits the ubiquitous text exposition format so the
registry can be scraped/diffed/grepped with standard tooling; the JSONL
side lives on :meth:`repro.telemetry.tracer.Tracer.to_jsonl` and is
re-exported here for symmetry.
"""

from __future__ import annotations

from typing import List

from repro.telemetry.metrics import MetricRegistry

#: Prefix stamped on every exported metric name.
METRIC_PREFIX = "repro"


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels, extra: str = "") -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricRegistry,
                      prefix: str = METRIC_PREFIX) -> str:
    """The registry in Prometheus text exposition format.

    Output is deterministically ordered (by metric name, then labels), so
    two identical runs render byte-identical text modulo wall-clock
    metrics (``sim_wall_seconds_total``, ``profile_seconds``).
    """
    lines: List[str] = []
    typed = set()
    for metric in registry.snapshot():
        full = f"{prefix}_{metric.name}" if prefix else metric.name
        if full not in typed:
            lines.append(f"# TYPE {full} {metric.kind}")
            typed.add(full)
        if metric.kind == "histogram":
            for bound, cumulative in metric.cumulative_buckets():
                labels = _format_labels(
                    metric.labels, f'le="{_format_number(bound)}"')
                lines.append(f"{full}_bucket{labels} {cumulative}")
            base = _format_labels(metric.labels)
            lines.append(f"{full}_sum{base} {_format_number(metric.sum)}")
            lines.append(f"{full}_count{base} {metric.count}")
        else:
            labels = _format_labels(metric.labels)
            lines.append(f"{full}{labels} {_format_number(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricRegistry, path: str,
                     prefix: str = METRIC_PREFIX) -> None:
    with open(path, "w") as handle:
        handle.write(render_prometheus(registry, prefix))


def write_jsonl(tracer, path: str) -> int:
    """Dump a tracer's retained events as JSON Lines; returns the count."""
    return tracer.dump(path)
