"""Always-on metric primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricRegistry` hands out metric instances keyed by (name,
labels).  Everything is dict-plus-float arithmetic — no locks (the event
simulator is single-threaded) and no background machinery — so the
instrumented hot paths stay cheap enough to leave enabled during
experiments.  A *disabled* registry returns shared null singletons whose
mutators are no-ops, which is the fast path the overhead benchmark
(:mod:`benchmarks.bench_telemetry_overhead`) bounds.

Metric names use ``snake_case`` (Prometheus-compatible); label values are
free-form strings.  Callers on per-packet paths should hold onto the
returned metric object instead of re-resolving it per event.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket upper bounds (seconds): spans sub-microsecond
#: data-plane costs through multi-second experiment durations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing float."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {dict(self.labels)}, {self.value})"


class Gauge:
    """A value that can go up and down (heap depth, virtual clock, ...)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """High-water-mark update: keep the larger of old and new."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {dict(self.labels)}, {self.value})"


class Histogram:
    """Fixed-bucket histogram (cumulative rendering happens at export)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(self, name: str, labels: LabelItems = (),
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("buckets must be a non-empty sorted sequence")
        self.name = name
        self.labels = labels
        self.bounds = tuple(buckets)
        # One count per finite bucket plus the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, {dict(self.labels)}, "
                f"count={self.count}, sum={self.sum})")


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    kind = "counter"
    __slots__ = ()
    name = ""
    labels: LabelItems = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    kind = "gauge"
    __slots__ = ()
    name = ""
    labels: LabelItems = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram:
    kind = "histogram"
    __slots__ = ()
    name = ""
    labels: LabelItems = ()
    bounds: Tuple[float, ...] = ()
    sum = 0.0
    count = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        return []


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricRegistry:
    """Keyed store of metrics; disabled registries cost (almost) nothing."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> Tuple[str, LabelItems]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get_or_create(self, cls, name: str, labels: Dict[str, object],
                       **kwargs):
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif metric.kind != cls.kind:
            raise TypeError(
                f"metric {name!r} already registered as a {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get_or_create(Histogram, name, labels,
                                   buckets=buckets or DEFAULT_BUCKETS)

    # -- inspection ---------------------------------------------------------

    def get(self, name: str, **labels):
        """The registered metric, or None if never touched."""
        return self._metrics.get(self._key(name, labels))

    def value(self, name: str, **labels) -> float:
        """Counter/gauge value (0.0 if absent) — test convenience."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0.0

    def snapshot(self) -> List[object]:
        """All metrics, deterministically ordered by (name, labels)."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._metrics})

    def with_name(self, name: str) -> List[object]:
        return [m for m in self.snapshot() if m.name == name]

    def clear(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[object]:
        return iter(self.snapshot())
