"""Structured, virtual-time-stamped trace events with ring-buffer retention.

The tracer is the accountability record SDNsec argues for: every
observable the data plane or controller acts on (drops, tamper events,
key exchanges, alerts) becomes a :class:`TraceEvent` stamped with the
*simulator's virtual clock*, so two seeded runs of the same experiment
produce byte-identical JSONL dumps.  Wall-clock profiling deliberately
lives in the metric registry (``profile_seconds``) and never enters the
trace, precisely to preserve that determinism.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Dict, List, Optional


class TraceEvent:
    """One structured event: (virtual time, name, free-form fields)."""

    __slots__ = ("time", "name", "fields")

    def __init__(self, at: float, name: str, fields: Dict[str, object]):
        self.time = at
        self.name = name
        self.fields = fields

    def as_dict(self) -> Dict[str, object]:
        record = {"t": self.time, "event": self.name}
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        # sort_keys + compact separators give a canonical, diffable line.
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def __repr__(self) -> str:
        return f"TraceEvent(t={self.time}, {self.name!r}, {self.fields})"


class Tracer:
    """Bounded event log; the oldest events are evicted when full."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = 65536):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self._clock = clock or (lambda: 0.0)
        self._events: deque = deque(maxlen=capacity)
        self.capacity = capacity
        self.emitted = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a time source (the simulator's clock)."""
        self._clock = clock

    def emit(self, name: str, **fields) -> None:
        """Record one event at the current (virtual) time."""
        self._events.append(TraceEvent(self._clock(), name, fields))
        self.emitted += 1

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring buffer by newer ones."""
        return self.emitted - len(self._events)

    def events(self, name: Optional[str] = None) -> List[TraceEvent]:
        """Retained events, oldest first; optionally filtered by name."""
        if name is None:
            return list(self._events)
        return [event for event in self._events if event.name == name]

    def to_jsonl(self) -> str:
        """All retained events as JSON Lines (one canonical line each)."""
        return "".join(event.to_json() + "\n" for event in self._events)

    def dump(self, path: str) -> int:
        """Write the JSONL export to a file; returns the event count."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._events)


class NullTracer:
    """Disabled tracer: every operation is a no-op, nothing is retained."""

    enabled = False
    capacity = 0
    emitted = 0
    evicted = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def emit(self, name: str, **fields) -> None:
        pass

    def events(self, name: Optional[str] = None) -> List[TraceEvent]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def dump(self, path: str) -> int:
        with open(path, "w") as handle:
            handle.write("")
        return 0

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


class Span:
    """Context manager timing a code region (wall clock) into a histogram.

    Spans profile *host* execution cost — how long the simulator spent
    inside a component — so they use ``time.perf_counter`` and feed the
    ``profile_seconds`` histogram rather than the deterministic trace.
    """

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()
