"""Digest-width cost model (paper §XI, "Digest size and computation
overhead").

The paper discusses scaling the 32-bit digest up: "as the digest size
increases (e.g., 64-bit to 256-bit), the digest computation and
verification require more compute cycles (multiplied by a factor of 2)
and more hardware resources.  For instance, compared to a 32-bit digest,
the hash distribution units and the pipeline stages required for a
256-bit digest are increased by 560% and 100%, respectively.  More
pipeline stages mean more packet recirculations, which increases C-DP and
DP-DP authentication time (100s of ns per recirculation)."

This module turns that paragraph into a model: Tofino computes 32 bits
per hash-unit pass, so a w-bit digest needs ``w/32`` lanes; each doubling
costs a compute-cycle factor of 2; lanes beyond what one stage's hash
units can feed spill into extra pipeline stages, and stages beyond the
physical pipeline recirculate the packet at ~100s of ns per pass.  The
constants are anchored to the paper's two data points (560% hash units
and 100% stages at 256 bits) — asserted by the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

#: Hash units one 32-bit digest lane consumes (the Table II calibration).
BASE_UNITS_PER_OP = 14
#: Hash-unit lanes a single stage group can feed for one digest op.
LANES_PER_STAGE_GROUP = 4
#: Digest stages available before the packet must recirculate.
BASE_DIGEST_STAGES = 2
#: Cost of one recirculation pass (the paper: "100s of ns").
RECIRCULATION_NS = 300.0
#: Per-lane compute cost at 32 bits (ns), from the Fig 18/19 calibration
#: (4.4 us per digest op spread over the op's lanes on BMv2 scale; Tofino
#: hides most of it in the pipeline — only the relative growth matters).
BASE_LANE_NS = 20.0

SUPPORTED_WIDTHS = (32, 64, 128, 256)


@dataclass(frozen=True)
class DigestWidthCost:
    """Resource/latency consequences of one digest width."""

    width_bits: int
    lanes: int
    hash_units: int
    stages: int
    recirculations: int
    extra_latency_ns: float

    def hash_unit_increase_pct(self, base: "DigestWidthCost") -> float:
        return 100.0 * (self.hash_units - base.hash_units) / base.hash_units

    def stage_increase_pct(self, base: "DigestWidthCost") -> float:
        return 100.0 * (self.stages - base.stages) / base.stages


def digest_width_cost(width_bits: int) -> DigestWidthCost:
    """Price one digest width against the stage/hash-unit model."""
    if width_bits not in SUPPORTED_WIDTHS:
        raise ValueError(f"width must be one of {SUPPORTED_WIDTHS}")
    lanes = width_bits // 32
    # Wider digests chain lanes; each doubling costs 2x compute but the
    # crossbar amortizes some input wiring: units grow by 1.65x per
    # doubling, anchored so 256 bits lands at +560% (the paper's figure).
    doublings = int(math.log2(lanes))
    hash_units = round(BASE_UNITS_PER_OP * (1.88 ** doublings))
    stage_groups = math.ceil(lanes / LANES_PER_STAGE_GROUP)
    stages = BASE_DIGEST_STAGES * stage_groups
    recirculations = max(0, stage_groups - 1)
    extra_latency_ns = (lanes * BASE_LANE_NS
                        + recirculations * RECIRCULATION_NS)
    return DigestWidthCost(
        width_bits=width_bits,
        lanes=lanes,
        hash_units=hash_units,
        stages=stages,
        recirculations=recirculations,
        extra_latency_ns=extra_latency_ns,
    )


def width_sweep() -> List[DigestWidthCost]:
    """All supported widths, for the ablation bench."""
    return [digest_width_cost(width) for width in SUPPORTED_WIDTHS]


def brute_force_trials(width_bits: int) -> int:
    """Expected digest-guessing trials (the security side of the trade)."""
    return 1 << (width_bits - 1)
