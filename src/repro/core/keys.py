"""Key storage, on both ends of the protocol.

Data plane (paper §VII): "We define a register with N+1 entries to store
the local key and N port keys, where N is the number of ports.  The local
key is stored at index zero, and port keys at port number as the index."
For consistent key updates (§VI-C) the data plane keeps *two* versions of
each key (old/new) — realized as two register arrays — and messages carry
the version tag that authenticated them.

Controller: per-switch seed/auth/local keys.  Note the controller never
holds *port* keys: it redirects the port-key ADHKD exchange but, thanks to
DH, cannot derive the resulting K_port — a property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.constants import KEY_VERSIONS
from repro.dataplane.registers import RegisterFile

LOCAL_KEY_INDEX = 0


@dataclass
class VersionedKey:
    """A key with two slots and an active version pointer."""

    slots: list = field(default_factory=lambda: [0, 0])
    active_version: int = 0

    def current(self) -> int:
        return self.slots[self.active_version]

    def by_version(self, version: int) -> int:
        return self.slots[version % KEY_VERSIONS]

    def install(self, key: int) -> int:
        """Write the new key into the inactive slot and flip to it.

        The very first install occupies the current (empty) slot without
        flipping, so version counters start at 0 on both endpoints and
        stay in lockstep thereafter.  Returns the new active version,
        which senders tag messages with.
        """
        if self.slots[self.active_version] == 0:
            self.slots[self.active_version] = key
            return self.active_version
        new_version = (self.active_version + 1) % KEY_VERSIONS
        self.slots[new_version] = key
        self.active_version = new_version
        return new_version

    def install_at(self, key: int, version: int) -> int:
        """Install into an explicit version slot and make it active.

        Used when the protocol dictates the slot (the version is derived
        from the authenticated exchange messages), so the two endpoints
        cannot drift even if one of them completed an attempt the other
        never saw.
        """
        version %= KEY_VERSIONS
        self.slots[version] = key
        self.active_version = version
        return version


class DataplaneKeyStore:
    """The switch-resident key registers.

    Two 64-bit register arrays of N+1 entries (one per key version); the
    local key lives at index 0 and each port key at its port index.
    """

    #: Bit layout of the ``p4auth_key_version`` register: bit 0 holds the
    #: active version pointer; bit 1 holds the port's exchange-direction
    #: bit (0 = this side initiated, 1 = responded) used to disambiguate
    #: stream-cipher nonces across a link's two directions.
    _VERSION_BIT = 0x1
    _DIRECTION_BIT = 0x2

    def __init__(self, registers: RegisterFile, num_ports: int):
        self.num_ports = num_ports
        size = num_ports + 1
        self._key_regs = [
            registers.define(f"p4auth_keys_v{v}", 64, size)
            for v in range(KEY_VERSIONS)
        ]
        self._active = registers.define("p4auth_key_version", 8, size)

    # -- generic access ----------------------------------------------------

    def get(self, index: int, version: Optional[int] = None) -> int:
        """Key at a register index; the active version unless specified."""
        if version is None:
            version = self.active_version(index)
        return self._key_regs[version % KEY_VERSIONS].read(index)

    def install(self, index: int, key: int) -> int:
        """Two-version consistent install; returns the new version tag.

        As in :class:`VersionedKey`, the first install of a slot occupies
        the current (empty) version without flipping.
        """
        current = self.active_version(index)
        if self._key_regs[current].read(index) == 0:
            self._key_regs[current].write(index, key)
            return current
        new_version = (current + 1) % KEY_VERSIONS
        self._key_regs[new_version].write(index, key)
        self._write_version(index, new_version)
        return new_version

    def install_at(self, index: int, key: int, version: int) -> int:
        """Install into an explicit version slot and make it active
        (see :meth:`VersionedKey.install_at`)."""
        version %= KEY_VERSIONS
        self._key_regs[version].write(index, key)
        self._write_version(index, version)
        return version

    def active_version(self, index: int) -> int:
        return self._active.read(index) & self._VERSION_BIT

    def _write_version(self, index: int, version: int) -> None:
        word = self._active.read(index)
        self._active.write(index,
                           (word & ~self._VERSION_BIT & 0xFF) | version)

    # -- exchange-direction bit (packed into the version register) ----------

    def port_direction(self, port: int) -> int:
        """0 = this side initiated the port-key exchange, 1 = responded."""
        return 1 if self._active.read(port) & self._DIRECTION_BIT else 0

    def set_port_direction(self, port: int, direction: int) -> None:
        word = self._active.read(port)
        if direction:
            word |= self._DIRECTION_BIT
        else:
            word &= ~self._DIRECTION_BIT & 0xFF
        self._active.write(port, word)

    # -- semantic accessors ----------------------------------------------------

    def local_key(self, version: Optional[int] = None) -> int:
        return self.get(LOCAL_KEY_INDEX, version)

    def set_local_key(self, key: int) -> int:
        return self.install(LOCAL_KEY_INDEX, key)

    def port_key(self, port: int, version: Optional[int] = None) -> int:
        if not 1 <= port <= self.num_ports:
            raise IndexError(f"port {port} out of range 1..{self.num_ports}")
        return self.get(port, version)

    def set_port_key(self, port: int, key: int) -> int:
        if not 1 <= port <= self.num_ports:
            raise IndexError(f"port {port} out of range 1..{self.num_ports}")
        return self.install(port, key)

    def has_port_key(self, port: int) -> bool:
        """True if the port has a nonzero key (zero = unprotected edge)."""
        return 1 <= port <= self.num_ports and self.port_key(port) != 0


class ControllerKeyStore:
    """The controller's per-switch key material."""

    def __init__(self):
        self._seed: Dict[str, int] = {}
        self._auth: Dict[str, int] = {}
        self._local: Dict[str, VersionedKey] = {}
        #: Optional observer ``listener(switch, kind, key, version)``
        #: fired synchronously on every install, *before* the caller can
        #: act on the new key — the durability layer's write-ahead hook
        #: (kind is "seed" | "auth" | "local").
        self.listener: Optional[Callable[[str, str, int, int], None]] = None

    # -- seed (pre-shared at switch boot, baked into the P4 binary) ---------

    def set_seed(self, switch: str, k_seed: int) -> None:
        self._seed[switch] = k_seed
        if self.listener is not None:
            self.listener(switch, "seed", k_seed, 0)

    def seed(self, switch: str) -> int:
        if switch not in self._seed:
            raise KeyError(f"no K_seed provisioned for switch {switch!r}")
        return self._seed[switch]

    # -- authentication key (from EAK) ----------------------------------------

    def set_auth_key(self, switch: str, k_auth: int) -> None:
        self._auth[switch] = k_auth
        if self.listener is not None:
            self.listener(switch, "auth", k_auth, 0)

    def auth_key(self, switch: str) -> int:
        if switch not in self._auth:
            raise KeyError(f"no K_auth established with switch {switch!r}")
        return self._auth[switch]

    def has_auth_key(self, switch: str) -> bool:
        return switch in self._auth

    # -- local key (from ADHKD), versioned --------------------------------------

    def install_local_key(self, switch: str, k_local: int) -> int:
        entry = self._local.setdefault(switch, VersionedKey())
        version = entry.install(k_local)
        if self.listener is not None:
            self.listener(switch, "local", k_local, version)
        return version

    def install_local_key_at(self, switch: str, k_local: int,
                             version: int) -> int:
        entry = self._local.setdefault(switch, VersionedKey())
        version = entry.install_at(k_local, version)
        if self.listener is not None:
            self.listener(switch, "local", k_local, version)
        return version

    def local_key(self, switch: str, version: Optional[int] = None) -> int:
        if switch not in self._local:
            raise KeyError(f"no K_local established with switch {switch!r}")
        entry = self._local[switch]
        if version is None:
            return entry.current()
        return entry.by_version(version)

    def local_key_version(self, switch: str) -> int:
        if switch not in self._local:
            raise KeyError(f"no K_local established with switch {switch!r}")
        return self._local[switch].active_version

    def has_local_key(self, switch: str) -> bool:
        return switch in self._local

    # -- durability surfaces (repro.store) ---------------------------------

    def known_switches(self) -> list:
        """Every switch with any key material (sorted)."""
        return sorted(set(self._seed) | set(self._auth) | set(self._local))

    def auth_key_or_zero(self, switch: str) -> int:
        return self._auth.get(switch, 0)

    def local_key_slots(self, switch: str):
        """``(slots, active_version)`` of a switch's local key — the raw
        two-version state the snapshot serializes."""
        entry = self._local[switch]
        return list(entry.slots), entry.active_version
