"""P4Auth: the paper's primary contribution.

Two cooperating protocol suites (paper §V, §VI):

- the **authentication protocol** — every C-DP register read/write message
  and every DP-DP feedback message carries a keyed 32-bit digest, computed
  and verified *in the data plane* (:mod:`repro.core.auth_dataplane`) and
  at the controller (:mod:`repro.core.controller`);
- the **key management protocol** (KMP, :mod:`repro.core.kmp`) — EAK and
  ADHKD exchanges establish and roll the local key (controller <-> switch)
  and per-port keys (switch <-> switch) without ever trusting the switch
  OS or the network links the messages cross.
"""

from repro.core.constants import (
    HdrType,
    RegOpType,
    KeyExchType,
    AlertCode,
    P4AUTH_HEADER,
    REG_OP_HEADER,
    EAK_HEADER,
    ADHKD_HEADER,
    KEYCTL_HEADER,
    ALERT_HEADER,
)
from repro.core.messages import (
    P4AUTH,
    build_reg_read_request,
    build_reg_write_request,
    build_reg_response,
    build_eak_message,
    build_adhkd_message,
    build_keyctl_message,
    build_alert,
    digest_material,
)
from repro.core.digest import DigestEngine
from repro.core.keys import DataplaneKeyStore, ControllerKeyStore, VersionedKey
from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.core.kmp import KeyManagementProtocol, KmpStats
from repro.core.program import baseline_program_spec, p4auth_program_spec

__all__ = [
    "HdrType",
    "RegOpType",
    "KeyExchType",
    "AlertCode",
    "P4AUTH_HEADER",
    "REG_OP_HEADER",
    "EAK_HEADER",
    "ADHKD_HEADER",
    "KEYCTL_HEADER",
    "ALERT_HEADER",
    "P4AUTH",
    "build_reg_read_request",
    "build_reg_write_request",
    "build_reg_response",
    "build_eak_message",
    "build_adhkd_message",
    "build_keyctl_message",
    "build_alert",
    "digest_material",
    "DigestEngine",
    "DataplaneKeyStore",
    "ControllerKeyStore",
    "VersionedKey",
    "P4AuthDataplane",
    "P4AuthController",
    "KeyManagementProtocol",
    "KmpStats",
    "baseline_program_spec",
    "p4auth_program_spec",
]
