"""Pure endpoint logic for the EAK and ADHKD exchanges (paper §VI-A/B).

These classes hold no I/O: they compute salts, public keys, and derived
secrets.  The controller (:mod:`repro.core.kmp`) and the data plane
(:mod:`repro.core.auth_dataplane`) wrap them with message transport and
authentication.

EAK (Exchange of Authentication Key, Fig 11)::

    C:  S1 = random
    C -> DP:  S1                      (auth: K_seed)
    DP: S2 = random; S = S1 || S2; K_auth = KDF(K_seed, S)
    DP -> C:  S2                      (auth: K_seed)
    C:  S = S1 || S2; K_auth = KDF(K_seed, S)

ADHKD (Authenticated DH exchange + Key Derivation, Fig 12)::

    I:  R1, S1 = random; PK1 = DH'(P, G, R1)
    I -> R:  PK1, S1                  (auth: context key)
    R:  R2, S2 = random; PK2 = DH'(P, G, R2)
        K_pms = DH''(P, R2, PK1); K = KDF(K_pms, S1 || S2)
    R -> I:  PK2, S2                  (auth: context key)
    I:  K_pms = DH''(P, R1, PK2); K = KDF(K_pms, S1 || S2)

Salt combination: the KDF takes a 64-bit salt, so each endpoint
contributes 32 bits — ``S = lo32(S1) || lo32(S2)`` (DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.crypto.kdf import Kdf
from repro.crypto.modified_dh import DhParameters, dh_public, dh_shared
from repro.crypto.ops import concat32, lo32
from repro.crypto.prng import XorShiftPrng


def combine_salts(salt1: int, salt2: int) -> int:
    """Concatenate the two endpoints' salt contributions (32 bits each)."""
    return concat32(lo32(salt1), lo32(salt2))


class EakEndpoint:
    """Either side of the EAK exchange."""

    def __init__(self, k_seed: int, prng: XorShiftPrng, kdf: Optional[Kdf] = None):
        self.k_seed = k_seed
        self._prng = prng
        self._kdf = kdf or Kdf()
        self._salt1: Optional[int] = None

    # initiator (controller) side -------------------------------------------

    def start(self) -> int:
        """Generate and remember S1; returns it for transmission."""
        self._salt1 = self._prng.next64()
        return self._salt1

    def finish(self, salt2: int) -> int:
        """Derive K_auth from the responder's S2."""
        if self._salt1 is None:
            raise RuntimeError("EAK finish() before start()")
        k_auth = self._kdf.derive(self.k_seed, combine_salts(self._salt1, salt2))
        self._salt1 = None
        return k_auth

    # responder (data plane) side ---------------------------------------------

    def respond(self, salt1: int) -> Tuple[int, int]:
        """Generate S2 and derive K_auth; returns (S2, K_auth)."""
        salt2 = self._prng.next64()
        k_auth = self._kdf.derive(self.k_seed, combine_salts(salt1, salt2))
        return salt2, k_auth


class AdhkdEndpoint:
    """Either side of one ADHKD exchange instance.

    An instance is single-use on the initiator side (it remembers R1/S1
    between :meth:`start` and :meth:`finish`); the responder side is
    stateless and may be reused.
    """

    def __init__(self, prng: XorShiftPrng, params: Optional[DhParameters] = None,
                 kdf: Optional[Kdf] = None):
        self._prng = prng
        self.params = params or DhParameters()
        self._kdf = kdf or Kdf()
        self._r1: Optional[int] = None
        self._salt1: Optional[int] = None

    # initiator side ---------------------------------------------------------

    def start(self) -> Tuple[int, int]:
        """Generate (PK1, S1) and remember the private state."""
        self._r1 = self._prng.next64()
        self._salt1 = self._prng.next64()
        pk1 = dh_public(self.params, self._r1)
        return pk1, self._salt1

    def pending_state(self) -> Tuple[int, int]:
        """(R1, S1) for callers that persist state in registers."""
        if self._r1 is None or self._salt1 is None:
            raise RuntimeError("no ADHKD exchange in progress")
        return self._r1, self._salt1

    def resume(self, r1: int, salt1: int) -> None:
        """Restore initiator state persisted externally (DP registers)."""
        self._r1 = r1
        self._salt1 = salt1

    def finish(self, pk2: int, salt2: int) -> int:
        """Derive the master secret from the responder's reply."""
        if self._r1 is None or self._salt1 is None:
            raise RuntimeError("ADHKD finish() before start()")
        k_pms = dh_shared(self.params, self._r1, pk2)
        master = self._kdf.derive(k_pms, combine_salts(self._salt1, salt2))
        self._r1 = None
        self._salt1 = None
        return master

    # responder side ------------------------------------------------------------

    def respond(self, pk1: int, salt1: int) -> Tuple[int, int, int]:
        """Process (PK1, S1); returns (PK2, S2, master secret)."""
        r2 = self._prng.next64()
        salt2 = self._prng.next64()
        pk2 = dh_public(self.params, r2)
        k_pms = dh_shared(self.params, r2, pk1)
        master = self._kdf.derive(k_pms, combine_salts(salt1, salt2))
        return pk2, salt2, master
