"""Key management protocol — the controller side (paper §VI-C, Fig 14).

Four operations, realized with the EAK/ADHKD message flows:

- **local key init** (switch boot): EAK with K_seed derives K_auth, then
  ADHKD authenticated with K_auth derives K_local.  4 messages.
- **local key update** (rollover): ADHKD authenticated with the current
  K_local.  2 messages.
- **port key init** (port activation): controller sends ``portKeyInit``;
  the two data planes run ADHKD *redirected through the controller*
  (``initKeyExch``), each leg authenticated with the respective local
  key.  5 messages.  Thanks to DH, the controller relays the exchange but
  never learns the resulting K_port.
- **port key update**: controller sends ``portKeyUpdate``; the data
  planes run ADHKD directly over their link, authenticated with the
  current K_port.  3 messages (1 C-DP + 2 DP-DP).

The class also automates the paper's F3 requirement: topology-driven key
establishment (LLDP-style port events) and periodic rollover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.constants import (
    ADHKD,
    EAK,
    P4AUTH,
    HdrType,
    KeyExchType,
)
from repro.core.exchange import AdhkdEndpoint, EakEndpoint
from repro.core.messages import (
    build_adhkd_message,
    build_eak_message,
    build_keyctl_message,
)
from repro.crypto.prng import XorShiftPrng
from repro.dataplane.packet import Packet
from repro.telemetry import KMP_RTT_BUCKETS

DoneCallback = Callable[["KmpOpRecord"], None]


@dataclass
class KmpOpRecord:
    """One completed key-management operation (a Fig 20 / Table III row)."""

    op: str  # "local_init" | "local_update" | "port_init" | "port_update"
    switch: str
    port: Optional[int]
    rtt_s: float
    messages: int
    bytes: int


@dataclass
class KmpStats:
    """All completed operations, queryable by operation type."""

    records: List[KmpOpRecord] = field(default_factory=list)
    failures: List["KmpFailure"] = field(default_factory=list)
    retries: int = 0

    def rtts(self, op: str) -> List[float]:
        return [r.rtt_s for r in self.records if r.op == op]

    def mean_rtt(self, op: str) -> float:
        samples = self.rtts(op)
        if not samples:
            raise ValueError(f"no completed {op!r} operations")
        return sum(samples) / len(samples)

    def message_count(self, op: str) -> int:
        samples = [r.messages for r in self.records if r.op == op]
        if not samples:
            raise ValueError(f"no completed {op!r} operations")
        return samples[0]

    def byte_count(self, op: str) -> int:
        samples = [r.bytes for r in self.records if r.op == op]
        if not samples:
            raise ValueError(f"no completed {op!r} operations")
        return samples[0]

    def count(self, op: str) -> int:
        return sum(1 for r in self.records if r.op == op)


@dataclass
class KmpFailure:
    """An operation that never completed (lost/tampered messages)."""

    op: str
    switch: str
    port: Optional[int]
    attempts: int
    gave_up_at: float


@dataclass
class _Exchange:
    op: str
    switch: str
    start: float
    port: Optional[int] = None
    peer: Optional[str] = None
    peer_port: Optional[int] = None
    eak: Optional[EakEndpoint] = None
    adhkd: Optional[AdhkdEndpoint] = None
    on_done: Optional[DoneCallback] = None
    messages: int = 0
    bytes: int = 0
    attempt: int = 1
    completed: bool = False


class KeyManagementProtocol:
    """Controller-resident KMP engine (owned by P4AuthController)."""

    def __init__(self, controller, retry_timeout_s: float = 0.02,
                 max_attempts: int = 3, backoff_factor: float = 2.0,
                 max_backoff_s: float = 0.25, backoff_jitter: float = 0.1,
                 backoff_seed: int = 0x5EED):
        self.c = controller
        self.stats = KmpStats()
        #: Give an exchange this long before declaring the attempt lost
        #: (lost/tampered messages otherwise stall key management forever).
        #: Retries back off exponentially (``backoff_factor`` per attempt,
        #: capped at ``max_backoff_s``) with seeded positive jitter, so a
        #: congested or blacked-out channel is not hammered on a fixed
        #: timer and racing exchanges decorrelate.
        self.retry_timeout_s = retry_timeout_s
        self.max_attempts = max_attempts
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self.backoff_jitter = backoff_jitter
        #: Observers of abandoned exchanges (the terminal failure surface;
        #: ``bootstrap_all`` and chaos scenarios subscribe here).
        self.on_abandoned: List[Callable[[KmpFailure], None]] = []
        self._backoff_prng = XorShiftPrng(backoff_seed)
        self._by_seq: Dict[Tuple[str, int], _Exchange] = {}
        self._by_port: Dict[Tuple[str, int], _Exchange] = {}
        self._rollover_interval: Optional[float] = None
        self._automation_enabled = False

    def retry_delay(self, attempt: int) -> float:
        """Watchdog timeout for the given attempt (1-based).

        Attempt 1 uses the base timeout with no jitter (and consumes no
        randomness, keeping clean runs byte-identical to a jitter-free
        configuration); retries grow exponentially and add up to
        ``backoff_jitter`` relative jitter from the seeded PRNG.
        """
        delay = self.retry_timeout_s * (self.backoff_factor ** (attempt - 1))
        delay = min(delay, self.max_backoff_s)
        if attempt > 1 and self.backoff_jitter > 0:
            delay *= 1.0 + self.backoff_jitter * self._backoff_prng.uniform()
        # The jitter multiplier applies before the ceiling, never above it:
        # ``max_backoff_s`` is a hard bound, not a pre-jitter target.
        return min(delay, self.max_backoff_s)

    # ------------------------------------------------------------------
    # dataplane instrumentation (called from controller.provision)
    # ------------------------------------------------------------------

    def observe_dataplane(self, dataplane) -> None:
        name = dataplane.switch.name
        dataplane.on_port_key_installed.append(
            lambda port, key, now, sw=name: self._port_key_done(sw, port, now)
        )
        dataplane.on_local_key_installed.append(
            lambda key, now, sw=name: None  # completion tracked via MSG2
        )
        dataplane.on_dpdp_exchange_sent.append(
            lambda port, packet, sw=name: self._dpdp_sent(sw, port, packet)
        )

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------

    def local_key_init(self, switch: str,
                       on_done: Optional[DoneCallback] = None,
                       _attempt: int = 1) -> None:
        """EAK + ADHKD: establish K_auth then K_local (Fig 14a)."""
        exchange = _Exchange("local_init", switch, self.c.sim.now,
                             on_done=on_done, attempt=_attempt)
        exchange.eak = EakEndpoint(self.c.keys.seed(switch), self.c.prng)
        salt1 = exchange.eak.start()
        seq = self.c.next_seq(switch)
        message = build_eak_message(KeyExchType.EAK_SALT1, salt1, seq)
        self.c.digest.sign(self.c.keys.seed(switch), message)
        self._by_seq[(switch, seq)] = exchange
        self._send(exchange, switch, message)
        self._watch(exchange,
                    lambda: self.local_key_init(switch, on_done,
                                                _attempt + 1))

    def local_key_update(self, switch: str,
                         on_done: Optional[DoneCallback] = None,
                         _attempt: int = 1) -> None:
        """ADHKD under the current K_local: roll to a new K_local (Fig 14b)."""
        exchange = _Exchange("local_update", switch, self.c.sim.now,
                             on_done=on_done, attempt=_attempt)
        self._start_local_adhkd(exchange, switch,
                                self.c.keys.local_key(switch),
                                self.c.keys.local_key_version(switch))
        self._watch(exchange,
                    lambda: self.local_key_update(switch, on_done,
                                                  _attempt + 1))

    def port_key_init(self, switch: str, port: int,
                      on_done: Optional[DoneCallback] = None,
                      _attempt: int = 1) -> None:
        """Redirected ADHKD between two data planes (Fig 14c)."""
        peer, peer_port = self._peer_of(switch, port)
        exchange = _Exchange("port_init", switch, self.c.sim.now, port=port,
                             peer=peer, peer_port=peer_port, on_done=on_done,
                             attempt=_attempt)
        self._by_port[(switch, port)] = exchange
        seq = self.c.next_seq(switch)
        message = build_keyctl_message(KeyExchType.PORT_KEY_INIT, port, seq,
                                       key_ver=self.c.keys.local_key_version(switch))
        self.c.digest.sign(self.c.keys.local_key(switch), message)
        self._send(exchange, switch, message)
        self._watch(exchange,
                    lambda: self._retry_port_op("port_init", switch, port,
                                                on_done, exchange.attempt))

    def port_key_update(self, switch: str, port: int,
                        on_done: Optional[DoneCallback] = None,
                        _attempt: int = 1) -> None:
        """Direct DP-DP ADHKD under the current K_port (Fig 14d)."""
        peer, peer_port = self._peer_of(switch, port)
        exchange = _Exchange("port_update", switch, self.c.sim.now, port=port,
                             peer=peer, peer_port=peer_port, on_done=on_done,
                             attempt=_attempt)
        self._by_port[(switch, port)] = exchange
        seq = self.c.next_seq(switch)
        message = build_keyctl_message(KeyExchType.PORT_KEY_UPDATE, port, seq,
                                       key_ver=self.c.keys.local_key_version(switch))
        self.c.digest.sign(self.c.keys.local_key(switch), message)
        self._send(exchange, switch, message)
        self._watch(exchange,
                    lambda: self._retry_port_op("port_update", switch, port,
                                                on_done, exchange.attempt))

    # ------------------------------------------------------------------
    # convenience: bootstrap, rollover, topology automation
    # ------------------------------------------------------------------

    def switch_links(self) -> List[Tuple[str, int, str, int]]:
        """All switch-to-switch links as (sw_a, port_a, sw_b, port_b),
        with the initiator end (lexicographically smaller name) first."""
        seen = set()
        result = []
        for name in self.c.network.switch_names():
            for port, (peer, peer_port) in self.c.network.neighbor_ports(name).items():
                key = tuple(sorted([(name, port), (peer, peer_port)]))
                if key in seen:
                    continue
                seen.add(key)
                if name <= peer:
                    result.append((name, port, peer, peer_port))
                else:
                    result.append((peer, peer_port, name, port))
        return result

    def bootstrap_all(self, on_done: Optional[Callable[[], None]] = None) -> None:
        """Initialize local keys for every switch, then every port key.

        ``on_done`` fires when every operation has *resolved* — completed
        or abandoned after ``max_attempts`` — never hanging silently on a
        dead switch.  Callers inspect :attr:`KmpStats.failures` for the
        outcome.  Port keys are only attempted across links whose both
        endpoints obtained a local key.
        """
        switches = sorted(self.c.dataplanes)
        if not switches:
            if on_done is not None:
                on_done()
            return
        state = {"phase": "locals",
                 "locals": set(switches),
                 "ports": set()}
        hooks: List[Callable[[KmpFailure], None]] = []

        def finish() -> None:
            state["phase"] = "done"
            if hooks:
                self.on_abandoned.remove(hooks.pop())
            if on_done is not None:
                on_done()

        def resolve_local(switch: str) -> None:
            state["locals"].discard(switch)
            if state["phase"] == "locals" and not state["locals"]:
                start_ports()

        def resolve_port(key: Tuple[str, Optional[int]]) -> None:
            state["ports"].discard(key)
            if state["phase"] == "ports" and not state["ports"]:
                finish()

        def start_ports() -> None:
            state["phase"] = "ports"
            keyed = [
                (sw_a, port_a)
                for sw_a, port_a, sw_b, _port_b in self.switch_links()
                if (self.c.keys.has_local_key(sw_a)
                    and self.c.keys.has_local_key(sw_b))
            ]
            if not keyed:
                finish()
                return
            state["ports"] = set(keyed)
            for sw_a, port_a in keyed:
                self.port_key_init(
                    sw_a, port_a,
                    on_done=lambda r: resolve_port((r.switch, r.port)))

        def on_abandon(failure: KmpFailure) -> None:
            if failure.op == "local_init":
                resolve_local(failure.switch)
            elif failure.op == "port_init":
                resolve_port((failure.switch, failure.port))

        hooks.append(on_abandon)
        self.on_abandoned.append(on_abandon)
        for switch in switches:
            self.local_key_init(switch,
                                on_done=lambda r: resolve_local(r.switch))

    def schedule_rollover(self, interval_s: float) -> None:
        """Periodically update every local and port key (§VIII key-size
        mitigation: roll keys well inside brute-force time)."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self._rollover_interval = interval_s
        self.c.sim.schedule(interval_s, self._rollover_tick)

    def cancel_rollover(self) -> None:
        self._rollover_interval = None

    def _rollover_tick(self) -> None:
        if self._rollover_interval is None or getattr(self.c, "halted",
                                                      False):
            return
        for switch in sorted(self.c.dataplanes):
            if self.c.keys.has_local_key(switch):
                self.local_key_update(switch)
        for sw_a, port_a, _sw_b, _port_b in self.switch_links():
            dataplane = self.c.dataplanes.get(sw_a)
            if dataplane is not None and dataplane.keys.has_port_key(port_a):
                self.port_key_update(sw_a, port_a)
        self.c.sim.schedule(self._rollover_interval, self._rollover_tick)

    def enable_topology_automation(self) -> None:
        """React to LLDP-style port events: key init on port-up (F3)."""
        if self._automation_enabled:
            return
        self._automation_enabled = True
        self.c.network.on_port_status(self._on_port_status)

    def _on_port_status(self, switch: str, port: int, up: bool) -> None:
        if not up:
            return
        try:
            peer, _peer_port = self._peer_of(switch, port)
        except KeyError:
            return
        # Only the lexicographically smaller endpoint initiates, so a
        # single link-up event doesn't trigger two racing exchanges.
        if switch > peer:
            return
        if (self.c.keys.has_local_key(switch)
                and self.c.keys.has_local_key(peer)):
            self.port_key_init(switch, port)

    # ------------------------------------------------------------------
    # message handling (dispatched from controller.handle_packet_in)
    # ------------------------------------------------------------------

    def handle_message(self, switch: str, packet: Packet) -> None:
        hdr = packet.get(P4AUTH)
        msg_type = hdr["msgType"]
        if msg_type == KeyExchType.EAK_SALT2:
            self._handle_eak_salt2(switch, packet, hdr)
        elif msg_type == KeyExchType.ADHKD_MSG1:
            self._handle_redirected_msg1(switch, packet, hdr)
        elif msg_type == KeyExchType.UPD_MSG2:
            self._handle_local_msg2(switch, packet, hdr)
        elif msg_type == KeyExchType.ADHKD_MSG2:
            if hdr["flags"] == 0:
                self._handle_local_msg2(switch, packet, hdr)
            else:
                self._handle_redirected_msg2(switch, packet, hdr)
        else:
            self.c.stats.unsolicited_responses += 1

    def _handle_eak_salt2(self, switch: str, packet: Packet, hdr) -> None:
        exchange = self._by_seq.pop((switch, hdr["seqNum"]), None)
        if exchange is None or exchange.eak is None:
            self.c.stats.unsolicited_responses += 1
            return
        if not self.c.digest.verify(self.c.keys.seed(switch), packet):
            self.c._record_tamper(switch, hdr["seqNum"],
                                  "EAK salt2 digest mismatch")
            return
        self._count_recv(exchange, packet)
        k_auth = exchange.eak.finish(packet.get(EAK)["salt"])
        self.c.keys.set_auth_key(switch, k_auth)
        # Continue straight into ADHKD, authenticated with K_auth.
        self._start_local_adhkd(exchange, switch, k_auth, key_ver=0)

    def _start_local_adhkd(self, exchange: _Exchange, switch: str,
                           auth_key: int, key_ver: int) -> None:
        exchange.adhkd = AdhkdEndpoint(self.c.prng)
        pk1, salt1 = exchange.adhkd.start()
        seq = self.c.next_seq(switch)
        # Fig 14 distinguishes initKeyExch (K_auth) from updKeyExch
        # (current K_local); the distinct message type also lets a
        # retried initialization re-run cleanly after the DP completed a
        # half-finished attempt.
        msg_type = (KeyExchType.ADHKD_MSG1 if exchange.op == "local_init"
                    else KeyExchType.UPD_MSG1)
        message = build_adhkd_message(msg_type, pk1, salt1, seq,
                                      key_ver=key_ver)
        self.c.digest.sign(auth_key, message)
        self._by_seq[(switch, seq)] = exchange
        self._send(exchange, switch, message)

    def _handle_local_msg2(self, switch: str, packet: Packet, hdr) -> None:
        exchange = self._by_seq.pop((switch, hdr["seqNum"]), None)
        if exchange is None or exchange.adhkd is None:
            self.c.stats.unsolicited_responses += 1
            return
        if exchange.op == "local_init":
            key = self.c.keys.auth_key(switch)
        else:
            key = self.c.keys.local_key(switch, hdr["keyVer"])
        if not self.c.digest.verify(key, packet):
            self.c._record_tamper(switch, hdr["seqNum"],
                                  "local-key ADHKD msg2 digest mismatch")
            return
        self._count_recv(exchange, packet)
        payload = packet.get(ADHKD)
        master = exchange.adhkd.finish(payload["pk"], payload["salt"])
        if exchange.op == "local_init":
            # Initialization always (re)occupies version 0 (see the DP
            # side) so retried bootstraps cannot drift version counters.
            self.c.keys.install_local_key_at(switch, master, 0)
        else:
            self.c.keys.install_local_key_at(switch, master,
                                             hdr["keyVer"] + 1)
        self._complete(exchange)

    def _handle_redirected_msg1(self, switch: str, packet: Packet, hdr) -> None:
        """MSG1 from the initiating DP of a port-key init; relay to peer."""
        port = hdr["flags"]
        exchange = self._by_port.get((switch, port))
        if exchange is None or exchange.op != "port_init":
            self.c.stats.unsolicited_responses += 1
            return
        if not self.c.digest.verify(
                self.c.keys.local_key(switch, hdr["keyVer"]), packet):
            self.c._record_tamper(switch, hdr["seqNum"],
                                  "redirected ADHKD msg1 digest mismatch")
            return
        self._count_recv(exchange, packet)
        payload = packet.get(ADHKD)
        peer, peer_port = exchange.peer, exchange.peer_port
        seq = self.c.next_seq(peer)
        relay = build_adhkd_message(
            KeyExchType.ADHKD_MSG1, payload["pk"], payload["salt"], seq,
            key_ver=self.c.keys.local_key_version(peer),
        )
        relay.get(P4AUTH)["flags"] = peer_port
        self.c.digest.sign(self.c.keys.local_key(peer), relay)
        self._by_seq[(peer, seq)] = exchange
        # Relay cost: one verify + one sign at the controller.
        self._send(exchange, peer, relay,
                   delay=2 * self.c.costs.controller_digest_s)

    def _handle_redirected_msg2(self, switch: str, packet: Packet, hdr) -> None:
        """MSG2 from the responding DP; relay back to the initiator DP."""
        exchange = self._by_seq.pop((switch, hdr["seqNum"]), None)
        if exchange is None or exchange.op != "port_init":
            self.c.stats.unsolicited_responses += 1
            return
        if not self.c.digest.verify(
                self.c.keys.local_key(switch, hdr["keyVer"]), packet):
            self.c._record_tamper(switch, hdr["seqNum"],
                                  "redirected ADHKD msg2 digest mismatch")
            return
        self._count_recv(exchange, packet)
        payload = packet.get(ADHKD)
        initiator = exchange.switch
        seq = self.c.next_seq(initiator)
        relay = build_adhkd_message(
            KeyExchType.ADHKD_MSG2, payload["pk"], payload["salt"], seq,
            key_ver=self.c.keys.local_key_version(initiator),
        )
        relay.get(P4AUTH)["flags"] = exchange.port
        self.c.digest.sign(self.c.keys.local_key(initiator), relay)
        self._send(exchange, initiator, relay,
                   delay=2 * self.c.costs.controller_digest_s)
        # Completion is observed via the initiator DP's install hook.

    # ------------------------------------------------------------------
    # completion & accounting
    # ------------------------------------------------------------------

    def _port_key_done(self, switch: str, port: int, now: float) -> None:
        exchange = self._by_port.pop((switch, port), None)
        if exchange is None:
            return
        self._complete(exchange, at=now)

    def _dpdp_sent(self, switch: str, port: int, packet: Packet) -> None:
        exchange = self._by_port.get((switch, port))
        if exchange is None:
            # The peer end of a pending exchange also emits messages.
            try:
                peer, peer_port = self._peer_of(switch, port)
            except KeyError:
                return
            exchange = self._by_port.get((peer, peer_port))
        if exchange is not None:
            exchange.messages += 1
            exchange.bytes += packet.size_bytes

    def _watch(self, exchange: _Exchange, restart) -> None:
        """Re-run the operation if it hasn't completed within the timeout."""
        self.c.sim.schedule(self.retry_delay(exchange.attempt),
                            self._check_exchange, exchange, restart)

    def _check_exchange(self, exchange: _Exchange, restart) -> None:
        if exchange.completed or getattr(self.c, "halted", False):
            return
        self._purge(exchange)
        telemetry = self.c.telemetry
        if exchange.attempt >= self.max_attempts:
            self._abandon(exchange)
            return
        self.stats.retries += 1
        if telemetry.enabled:
            telemetry.metrics.counter("kmp_retries_total",
                                      op=exchange.op).inc()
        restart()

    def _abandon(self, exchange: _Exchange) -> None:
        """Terminal failure: record, count, and notify observers."""
        failure = KmpFailure(exchange.op, exchange.switch, exchange.port,
                             exchange.attempt, self.c.sim.now)
        self.stats.failures.append(failure)
        telemetry = self.c.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter("kmp_exchange_abandoned_total",
                                      op=exchange.op).inc()
            telemetry.tracer.emit("kmp.exchange_abandoned", op=exchange.op,
                                  switch=exchange.switch,
                                  port=exchange.port,
                                  attempts=exchange.attempt)
        for hook in list(self.on_abandoned):
            hook(failure)

    def _retry_port_op(self, op: str, switch: str, port: int,
                       on_done, prior_attempt: int) -> None:
        method = (self.port_key_init if op == "port_init"
                  else self.port_key_update)
        try:
            method(switch, port, on_done=on_done,
                   _attempt=prior_attempt + 1)
        except KeyError:
            # The peer vanished between attempts (link removed, topology
            # change): abandon instead of crashing the event loop.
            self._abandon(_Exchange(op, switch, self.c.sim.now, port=port,
                                    attempt=prior_attempt + 1))

    def _purge(self, exchange: _Exchange) -> None:
        """Drop all routing-table references to a stale exchange."""
        for table in (self._by_seq, self._by_port):
            stale = [key for key, value in table.items()
                     if value is exchange]
            for key in stale:
                del table[key]

    def _complete(self, exchange: _Exchange, at: Optional[float] = None) -> None:
        exchange.completed = True
        record = KmpOpRecord(
            op=exchange.op,
            switch=exchange.switch,
            port=exchange.port,
            rtt_s=(at if at is not None else self.c.sim.now) - exchange.start,
            messages=exchange.messages,
            bytes=exchange.bytes,
        )
        self.stats.records.append(record)
        telemetry = self.c.telemetry
        if telemetry.enabled:
            telemetry.metrics.histogram(
                "kmp_rtt_seconds", buckets=KMP_RTT_BUCKETS,
                op=record.op).observe(record.rtt_s)
            telemetry.metrics.counter("kmp_exchanges_total",
                                      op=record.op).inc()
            telemetry.tracer.emit("kmp.exchange", op=record.op,
                                  switch=record.switch, port=record.port,
                                  rtt_s=record.rtt_s,
                                  messages=record.messages,
                                  bytes=record.bytes)
        if exchange.on_done is not None:
            exchange.on_done(record)

    def _send(self, exchange: _Exchange, switch: str, packet: Packet,
              delay: Optional[float] = None) -> None:
        if getattr(self.c, "halted", False):
            return  # a dead controller's timers send nothing
        exchange.messages += 1
        exchange.bytes += packet.size_bytes
        self.c.sim.schedule(
            delay if delay is not None else self.c.costs.controller_digest_s,
            self.c.network.send_packet_out, switch, packet,
        )

    def _count_recv(self, exchange: _Exchange, packet: Packet) -> None:
        exchange.messages += 1
        exchange.bytes += packet.size_bytes

    def _peer_of(self, switch: str, port: int) -> Tuple[str, int]:
        neighbors = self.c.network.neighbor_ports(switch)
        if port not in neighbors:
            raise KeyError(f"({switch!r}, port {port}) has no switch neighbor")
        return neighbors[port]


# ----------------------------------------------------------------------
# hierarchical key management (region-sharded fleets)
# ----------------------------------------------------------------------

#: Convergence-time histogram buckets (virtual seconds): a regional
#: bootstrap is a couple of C-DP round trips, a 10k-switch fleet rollover
#: a few hundred milliseconds of virtual time.
KMP_CONVERGENCE_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                           0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


@dataclass
class RegionConvergence:
    """One region-wide bootstrap or rollover round, timed in virtual time."""

    region: str
    op: str  # "bootstrap" | "rollover"
    started_s: float
    converged_s: float
    completed: int
    failed: int

    @property
    def duration_s(self) -> float:
        return self.converged_s - self.started_s

    def as_dict(self) -> Dict[str, object]:
        return {"region": self.region, "op": self.op,
                "duration_s": self.duration_s,
                "completed": self.completed, "failed": self.failed}


class RegionalKeyAuthority:
    """A region's key authority: owns bootstrap/rollover for its subtree.

    Thin coordination layer over the region controller's existing
    :class:`KeyManagementProtocol` — the message flows (EAK, ADHKD,
    redirected port exchanges) are untouched; the authority adds
    region-scoped convergence tracking, per-region telemetry, and the
    monotonic *rollover epoch* counter the cross-region two-version
    invariant is stated over (key versions themselves are mod
    ``KEY_VERSIONS`` slots, so only the completed-update count can order
    two regions' progress).
    """

    def __init__(self, region_id: str, controller, telemetry=None):
        self.region_id = region_id
        self.c = controller
        self.kmp: KeyManagementProtocol = controller.kmp
        self.telemetry = telemetry if telemetry is not None \
            else controller.telemetry
        self.convergences: List[RegionConvergence] = []
        self.bootstraps = 0
        self.rollovers = 0
        #: Observers ``hook(switch, epoch)`` of completed local-key
        #: updates (the durability layer journals epoch advances here).
        self.on_epoch: List[Callable[[str, int], None]] = []
        self._update_counts: Dict[str, int] = {}
        self._rollover_active = False

    # -- per-switch progress ----------------------------------------------

    def rollover_epoch(self, switch: str) -> int:
        """Completed local-key updates for ``switch`` (monotonic)."""
        return self._update_counts.get(switch, 0)

    def restore_epochs(self, epochs: Dict[str, int]) -> None:
        """Warm-restart entry point: resume epoch counters from a
        recovered snapshot (only ever moves counters forward)."""
        for switch, epoch in epochs.items():
            if epoch > self._update_counts.get(switch, 0):
                self._update_counts[switch] = epoch

    def switches(self) -> List[str]:
        return sorted(self.c.dataplanes)

    # -- operations --------------------------------------------------------

    def bootstrap(self, on_done: Optional[Callable[["RegionConvergence"],
                                                   None]] = None) -> None:
        """Bootstrap the whole subtree (locals then ports) and time it."""
        started = self.c.sim.now
        records_before = len(self.kmp.stats.records)
        failures_before = len(self.kmp.stats.failures)

        def finish() -> None:
            convergence = self._finish("bootstrap", started, records_before,
                                       failures_before)
            self.bootstraps += 1
            if on_done is not None:
                on_done(convergence)

        self.kmp.bootstrap_all(on_done=finish)

    def rollover(self, on_done: Optional[Callable[["RegionConvergence"],
                                                  None]] = None) -> None:
        """Roll every local and port key in the subtree; resolve fully.

        Completion (or abandonment after the KMP's bounded retries) of
        every issued update fires ``on_done`` — a blacked-out switch
        cannot hang the fleet rollover.  Each completed *local* update
        bumps the switch's rollover epoch.
        """
        if self._rollover_active:
            raise RuntimeError(
                f"region {self.region_id!r}: rollover already in flight")
        self._rollover_active = True
        started = self.c.sim.now
        records_before = len(self.kmp.stats.records)
        failures_before = len(self.kmp.stats.failures)
        locals_due = [switch for switch in self.switches()
                      if self.c.keys.has_local_key(switch)]
        ports_due = []
        for sw_a, port_a, _sw_b, _port_b in self.kmp.switch_links():
            dataplane = self.c.dataplanes.get(sw_a)
            if dataplane is not None and dataplane.keys.has_port_key(port_a):
                ports_due.append((sw_a, port_a))
        outstanding = ({("local", switch) for switch in locals_due}
                       | {("port", switch, port)
                          for switch, port in ports_due})
        hooks: List[Callable[[KmpFailure], None]] = []

        def finish() -> None:
            self._rollover_active = False
            if hooks:
                self.kmp.on_abandoned.remove(hooks.pop())
            convergence = self._finish("rollover", started, records_before,
                                       failures_before)
            self.rollovers += 1
            if on_done is not None:
                on_done(convergence)

        def resolve(key: tuple) -> None:
            outstanding.discard(key)
            if not outstanding:
                finish()

        def local_done(record: KmpOpRecord) -> None:
            epoch = self._update_counts.get(record.switch, 0) + 1
            self._update_counts[record.switch] = epoch
            for hook in list(self.on_epoch):
                hook(record.switch, epoch)
            resolve(("local", record.switch))

        def on_abandon(failure: KmpFailure) -> None:
            if failure.op == "local_update":
                resolve(("local", failure.switch))
            elif failure.op == "port_update":
                resolve(("port", failure.switch, failure.port))

        if not outstanding:
            finish()
            return
        hooks.append(on_abandon)
        self.kmp.on_abandoned.append(on_abandon)
        for switch in locals_due:
            self.kmp.local_key_update(switch, on_done=local_done)
        for switch, port in ports_due:
            self.kmp.port_key_update(
                switch, port,
                on_done=lambda r: resolve(("port", r.switch, r.port)))

    # -- consistency surfaces ----------------------------------------------

    def seq_divergence(self) -> Dict[str, int]:
        """Per switch: controller next-seq minus the DP's expected seq.

        Always >= 0 in an unforged fleet (the data plane only advances on
        controller-signed messages) and exactly 0 once every issued
        message has been delivered and verified — a negative value means
        someone advanced the DP without the controller, i.e. a forged
        write.
        """
        divergence: Dict[str, int] = {}
        for switch in self.switches():
            dataplane = self.c.dataplanes[switch]
            expected = dataplane.switch.registers.get(
                "p4auth_expected_seq").read(0)
            divergence[switch] = self.c._seq[switch] - expected
        return divergence

    def tamper_indicators(self) -> Dict[str, int]:
        """Controller+DP counters that a forged write would have to trip."""
        stats = self.c.stats
        totals = {"tampered_responses": stats.tampered_responses,
                  "unsolicited_responses": stats.unsolicited_responses,
                  "unsolicited_nacks": stats.unsolicited_nacks,
                  "digest_fail_cdp": 0, "digest_fail_dpdp": 0,
                  "replays_detected": 0, "alerts_raised": 0}
        for dataplane in self.c.dataplanes.values():
            totals["digest_fail_cdp"] += dataplane.stats.digest_fail_cdp
            totals["digest_fail_dpdp"] += dataplane.stats.digest_fail_dpdp
            totals["replays_detected"] += dataplane.stats.replays_detected
            totals["alerts_raised"] += dataplane.stats.alerts_raised
        return totals

    # -- internals ---------------------------------------------------------

    def _finish(self, op: str, started: float, records_before: int,
                failures_before: int) -> RegionConvergence:
        convergence = RegionConvergence(
            region=self.region_id, op=op, started_s=started,
            converged_s=self.c.sim.now,
            completed=len(self.kmp.stats.records) - records_before,
            failed=len(self.kmp.stats.failures) - failures_before)
        self.convergences.append(convergence)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            metrics = telemetry.metrics
            metrics.counter(f"kmp_region_{op}_total",
                            region=self.region_id).inc()
            metrics.histogram("kmp_region_convergence_seconds",
                              buckets=KMP_CONVERGENCE_BUCKETS,
                              region=self.region_id,
                              op=op).observe(convergence.duration_s)
        return convergence


class HierarchicalKMP:
    """Root coordinator over the per-region key authorities (ROADMAP 3).

    Coordinates fleet-wide bootstrap and rollover across a
    :class:`~repro.net.region.RegionalWorld`, and states the cross-region
    **two-version-update invariant**: while a coordinated rollover is in
    flight, the rollover epochs of the two endpoints of any boundary
    link may differ by at most one — i.e. any key a boundary peer could
    reasonably hold is either the old or the new version, never older
    (the paper's §VI-C two-slot window, lifted from one switch to the
    region graph).  The invariant is sampled at lockstep epoch barriers,
    where every region agrees on the clock.
    """

    def __init__(self, world, authorities: Dict[str, RegionalKeyAuthority]):
        self.world = world
        missing = [region.id for region in world.regions
                   if region.id not in authorities]
        if missing:
            raise ValueError(f"regions without a key authority: {missing}")
        self.authorities = {region.id: authorities[region.id]
                            for region in world.regions}
        self.boundary_violations: List[Dict[str, object]] = []
        self._monitor_hook: Optional[Callable[[float], None]] = None

    # -- fleet operations --------------------------------------------------

    def bootstrap_fleet(self, deadline_s: float = 30.0) -> Dict[str, object]:
        """Bootstrap every region concurrently; barrier on full resolution."""
        return self._fleet_round("bootstrap", deadline_s, monitor=False)

    def rollover_fleet(self, deadline_s: float = 30.0,
                       monitor: bool = True) -> Dict[str, object]:
        """One coordinated rollover round across all regions.

        With ``monitor=True`` the two-version invariant is checked at
        every lockstep barrier for the duration of the round; violations
        accumulate in :attr:`boundary_violations` and the returned
        summary.
        """
        return self._fleet_round("rollover", deadline_s, monitor=monitor)

    def _fleet_round(self, op: str, deadline_s: float,
                     monitor: bool) -> Dict[str, object]:
        done: Dict[str, RegionConvergence] = {}
        violations_before = len(self.boundary_violations)
        if monitor:
            self._arm_monitor()
        try:
            for region_id, authority in self.authorities.items():
                start = (authority.bootstrap if op == "bootstrap"
                         else authority.rollover)
                start(on_done=lambda conv, rid=region_id:
                      done.__setitem__(rid, conv))
            converged = self.world.run_until(
                lambda: len(done) == len(self.authorities),
                deadline=self.world.now + deadline_s)
        finally:
            if monitor:
                self._disarm_monitor()
        regions = {region_id: done[region_id].as_dict()
                   for region_id in sorted(done)}
        return {
            "op": op,
            "converged": converged,
            "regions": regions,
            "duration_s": (max((c["duration_s"] for c in regions.values()),
                               default=0.0)),
            "failed": sum(c["failed"] for c in regions.values()),
            "boundary_violations":
                len(self.boundary_violations) - violations_before,
        }

    # -- two-version invariant ---------------------------------------------

    def boundary_epoch_gaps(self) -> List[Dict[str, object]]:
        """Rollover-epoch delta across every boundary link, right now."""
        gaps = []
        for link in self.world.boundary_links:
            epoch_a = self.authorities[link.region_a].rollover_epoch(
                link.switch_a)
            epoch_b = self.authorities[link.region_b].rollover_epoch(
                link.switch_b)
            gaps.append({
                "link": f"{link.switch_a}<->{link.switch_b}",
                "epoch_a": epoch_a, "epoch_b": epoch_b,
                "gap": abs(epoch_a - epoch_b),
            })
        return gaps

    def check_two_version_invariant(self) -> List[Dict[str, object]]:
        """Boundary links whose endpoints are more than one rollover apart."""
        return [gap for gap in self.boundary_epoch_gaps() if gap["gap"] > 1]

    def _arm_monitor(self) -> None:
        if self._monitor_hook is not None:
            return

        def check(barrier_s: float) -> None:
            for gap in self.check_two_version_invariant():
                violation = dict(gap)
                violation["at_s"] = barrier_s
                self.boundary_violations.append(violation)

        self._monitor_hook = check
        self.world.on_epoch.append(check)

    def _disarm_monitor(self) -> None:
        if self._monitor_hook is not None:
            self.world.on_epoch.remove(self._monitor_hook)
            self._monitor_hook = None

    # -- fleet consistency surfaces ----------------------------------------

    def seq_divergence(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for authority in self.authorities.values():
            merged.update(authority.seq_divergence())
        return merged

    def tamper_indicators(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for authority in self.authorities.values():
            for key, value in authority.tamper_indicators().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def consistency_report(self) -> Dict[str, object]:
        """The acceptance surface: forged-write and divergence evidence."""
        divergence = self.seq_divergence()
        return {
            "seq_divergence_max": max(divergence.values(), default=0),
            "seq_divergence_min": min(divergence.values(), default=0),
            # KMP control messages consume controller seqs without
            # touching the DP's reg-op replay register, so a positive lag
            # here is normal after key operations; only a *negative*
            # divergence (DP ahead) indicates forgery.
            "switches_with_kmp_seq_lag":
                sum(1 for v in divergence.values() if v),
            "tamper_indicators": self.tamper_indicators(),
            "boundary_violations": len(self.boundary_violations),
        }
