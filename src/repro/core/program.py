"""Compiled-program resource inventories for Table II.

The paper's evaluation base is "a P4 program that performs destination-
based layer-3 port forwarding with two match-action tables and one
register" (§IX-B); P4Auth's data-plane modules are added on top.  These
functions build the corresponding :class:`ProgramSpec` inventories.  The
P4Auth overlay lists *exactly* the state the implementation in
:mod:`repro.core.auth_dataplane` allocates: ten register arrays (two key
arrays + version pointer, K_auth, three sequence trackers, two pending-
exchange arrays, the alert counter), the ``reg_id_to_name_mapping`` table,
and the hash-unit/PHV claims of the digest, KDF, and protocol headers.
"""

from __future__ import annotations

from repro.dataplane.resources import ProgramSpec


def baseline_program_spec() -> ProgramSpec:
    """Destination-based L3 forwarding: 2 tables + 1 register (§IX-B)."""
    spec = ProgramSpec("baseline-l3fwd")
    # IPv4 LPM forwarding: TCAM, 12K prefixes, 64b of action data
    # (egress port + next-hop id).
    spec.add_table("ipv4_lpm", key_bits=32, entries=12288, uses_tcam=True,
                   action_data_bits=64)
    # Exact-match L2 rewrite: 16K MACs, 80b action data (dst MAC + port).
    spec.add_table("l2_rewrite", key_bits=48, entries=16384, uses_tcam=False,
                   action_data_bits=80)
    # The base program's one register: per-flow packet counters.
    spec.add_register("flow_stats", width_bits=32, size=8192)
    # PHV: Ethernet (112b) + IPv4 (160b) + bridged/intrinsic metadata (480b).
    spec.add_headers("ethernet", 112)
    spec.add_headers("ipv4", 160)
    spec.add_headers("intrinsic_metadata", 480)
    return spec


def p4auth_overlay_spec(num_ports: int = 64,
                        mapped_registers: int = 1) -> ProgramSpec:
    """The resources P4Auth adds to a program (paper §IX-B, Table II).

    Parameters
    ----------
    num_ports:
        Switch port count M; key registers hold 64*(M+1) bits per version.
    mapped_registers:
        K, the number of program registers exposed to C-DP ops; the
        mapping table holds 2*K entries (capacity is allocated in SRAM
        block granularity, so small K all land in one block).
    """
    spec = ProgramSpec("p4auth-overlay")
    size = num_ports + 1
    # The ten register arrays of P4AuthDataplane.
    spec.add_register("p4auth_keys_v0", 64, size)
    spec.add_register("p4auth_keys_v1", 64, size)
    spec.add_register("p4auth_key_version", 8, size)
    spec.add_register("p4auth_kauth", 64, 1)
    spec.add_register("p4auth_expected_seq", 32, 1)
    spec.add_register("p4auth_dp_seq", 32, 1)
    spec.add_register("p4auth_port_seq", 32, size)
    spec.add_register("p4auth_pending_r1", 64, size)
    spec.add_register("p4auth_pending_s1", 64, size)
    spec.add_register("p4auth_alert_count", 32, 1)
    # reg_id_to_name_mapping: exact (regId 32b + opType 8b), 40b key,
    # 32b action data; 2K live entries in a 1024-entry allocation.
    spec.add_table("reg_id_to_name_mapping", key_bits=40,
                   entries=max(1024, 2 * mapped_registers),
                   uses_tcam=False, action_data_bits=32)
    # Hash distribution units (the dominant cost; Table II: 1.4% -> 51.4%).
    # Wide keyed digests over header+payload consume many crossbar slices.
    spec.add_hash("digest_verify", 14)
    spec.add_hash("digest_sign", 14)
    spec.add_hash("kdf_prf_extract_expand", 4)  # 2 PRF runs x 2 units
    spec.add_hash("key_exchange_auth", 2)
    spec.add_hash("alert_sign", 1)
    # PHV: protocol headers + P4Auth metadata.
    spec.add_headers("p4auth_header", 112)       # 14 bytes
    spec.add_headers("reg_op_payload", 128)
    spec.add_headers("adhkd_payload", 128)
    spec.add_headers("eak_payload", 64)
    spec.add_headers("keyctl_payload", 32)
    spec.add_headers("alert_payload", 64)
    spec.add_headers("p4auth_metadata", 288)     # key, digest scratch, verdict
    return spec


def p4auth_program_spec(num_ports: int = 64,
                        mapped_registers: int = 1) -> ProgramSpec:
    """Baseline L3 forwarding with the P4Auth overlay applied."""
    spec = baseline_program_spec()
    spec.name = "l3fwd-with-p4auth"
    spec.extend(p4auth_overlay_spec(num_ports, mapped_registers))
    return spec
