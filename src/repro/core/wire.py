"""Wire codec: serialize and parse P4Auth messages as byte strings.

:meth:`repro.dataplane.packet.Packet.serialize` already flattens a packet
to bytes; this module provides the inverse for P4Auth protocol messages,
reconstructing the header stack from the ``hdrType``/``msgType`` fields —
i.e., the parser a real P4 program or controller stack would implement.
Byte counts produced here are exactly the Table III message sizes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.constants import (
    ADHKD,
    ADHKD_HEADER,
    ALERT,
    ALERT_HEADER,
    EAK,
    EAK_HEADER,
    KEYCTL,
    KEYCTL_HEADER,
    P4AUTH,
    P4AUTH_HEADER,
    REG_OP,
    REG_OP_HEADER,
    HdrType,
    KeyExchType,
)
from repro.dataplane.headers import HeaderType
from repro.dataplane.packet import Packet

_KEY_EXCHANGE_PAYLOADS = {
    int(KeyExchType.EAK_SALT1): (EAK, EAK_HEADER),
    int(KeyExchType.EAK_SALT2): (EAK, EAK_HEADER),
    int(KeyExchType.ADHKD_MSG1): (ADHKD, ADHKD_HEADER),
    int(KeyExchType.ADHKD_MSG2): (ADHKD, ADHKD_HEADER),
    int(KeyExchType.UPD_MSG1): (ADHKD, ADHKD_HEADER),
    int(KeyExchType.UPD_MSG2): (ADHKD, ADHKD_HEADER),
    int(KeyExchType.PORT_KEY_INIT): (KEYCTL, KEYCTL_HEADER),
    int(KeyExchType.PORT_KEY_UPDATE): (KEYCTL, KEYCTL_HEADER),
}


class WireFormatError(ValueError):
    """The byte string is not a well-formed P4Auth message."""


def wire_header_layouts() -> Dict[str, HeaderType]:
    """Authoritative name -> layout map for every P4Auth wire header.

    The static invariant checker (:mod:`repro.verify.invariants`)
    compares each program's declared header layouts against this map, so
    an IR declaration cannot silently disagree with the codec.
    """
    return {
        P4AUTH: P4AUTH_HEADER,
        REG_OP: REG_OP_HEADER,
        EAK: EAK_HEADER,
        ADHKD: ADHKD_HEADER,
        KEYCTL: KEYCTL_HEADER,
        ALERT: ALERT_HEADER,
    }


def _payload_type(hdr: Mapping[str, int]) -> Optional[Tuple[str, HeaderType]]:
    hdr_type = hdr["hdrType"]
    if hdr_type == HdrType.REGISTER_OP:
        return REG_OP, REG_OP_HEADER
    if hdr_type == HdrType.ALERT:
        return ALERT, ALERT_HEADER
    if hdr_type == HdrType.KEY_EXCHANGE:
        entry = _KEY_EXCHANGE_PAYLOADS.get(hdr["msgType"])
        if entry is None:
            raise WireFormatError(
                f"unknown key-exchange msgType {hdr['msgType']}")
        return entry
    if hdr_type == HdrType.DP_FEEDBACK:
        return None  # the protected app headers follow, app-defined
    raise WireFormatError(f"unknown hdrType {hdr_type}")


def serialize_message(packet: Packet) -> bytes:
    """Flatten a P4Auth message to its wire bytes."""
    if not packet.has(P4AUTH):
        raise WireFormatError("packet carries no p4auth header")
    return packet.serialize()


def parse_message(data: bytes,
                  feedback_header: Optional[HeaderType] = None) -> Packet:
    """Reconstruct a P4Auth protocol message from wire bytes.

    ``feedback_header`` supplies the application header type for
    ``DP_FEEDBACK`` messages (the parser of the protected in-network
    system, e.g. the HULA probe header).
    """
    if len(data) < P4AUTH_HEADER.byte_width:
        raise WireFormatError(
            f"need at least {P4AUTH_HEADER.byte_width} bytes, "
            f"got {len(data)}")
    hdr = P4AUTH_HEADER.parse(data)
    offset = P4AUTH_HEADER.byte_width
    packet = Packet()
    packet.push(P4AUTH, hdr)
    entry = _payload_type(hdr)
    if entry is not None:
        name, header_type = entry
        if len(data) - offset < header_type.byte_width:
            raise WireFormatError(
                f"truncated {name} payload: need {header_type.byte_width} "
                f"bytes, got {len(data) - offset}")
        if hdr["length"] != header_type.byte_width:
            raise WireFormatError(
                f"length field {hdr['length']} does not match "
                f"{name} payload width {header_type.byte_width}")
        packet.push(name, header_type.parse(data[offset:]))
        offset += header_type.byte_width
    elif feedback_header is not None:
        if len(data) - offset < feedback_header.byte_width:
            raise WireFormatError("truncated feedback payload")
        packet.push(feedback_header.name, feedback_header.parse(data[offset:]))
        offset += feedback_header.byte_width
    packet.payload = data[offset:]
    return packet
