"""Secret-source annotations: which data-plane state holds key material.

P4Auth's security argument (paper §V, §VII) rests on key material never
leaving the data plane: the local/port key arrays, K_auth, and the
pending Diffie-Hellman exponents of an in-flight ADHKD exchange are all
values an adversary must never observe on the wire, in a mirrored
packet, or through the C-DP register interface.  This module is the
single authoritative list of those sources; the static analyzers in
:mod:`repro.verify` consume it to seed the taint lattice, and the live
cross-checker uses it to prove none of them is reachable through the
``reg_id_to_name_mapping`` table.

The annotations are *name-based* on purpose: register names are the
stable identity shared by the simulator (:class:`~repro.dataplane.registers.RegisterFile`),
the resource inventories (:mod:`repro.core.program`), and the verify IR
(:mod:`repro.core.auth_ir`), so one list covers all three.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.core.constants import KEY_VERSIONS

#: Register arrays whose cells are key material or key-equivalent
#: secrets (DH exponents recover the session key).  Everything here is
#: labeled SECRET by the taint engine.
SECRET_REGISTERS: FrozenSet[str] = frozenset(
    {f"p4auth_keys_v{version}" for version in range(KEY_VERSIONS)}
    | {
        "p4auth_kauth",       # K_auth from the EAK exchange (Fig 11)
        "p4auth_pending_r1",  # pending ADHKD private exponent r1
        "p4auth_pending_s1",  # pending ADHKD salt S1 (KDF input)
    }
)

#: Any register whose name starts with one of these prefixes is P4Auth
#: internal state and must not be mappable to C-DP operations, secret or
#: not (the coarser guard :meth:`~repro.core.auth_dataplane.P4AuthDataplane.map_register`
#: already enforces at install time).
INTERNAL_REGISTER_PREFIXES: Tuple[str, ...] = ("p4auth_",)


def is_secret_register(name: str) -> bool:
    """True if the named register array holds key material."""
    return name in SECRET_REGISTERS


def is_internal_register(name: str) -> bool:
    """True if the register is P4Auth-internal (never C-DP mappable)."""
    return name.startswith(INTERNAL_REGISTER_PREFIXES)
