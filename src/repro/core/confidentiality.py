"""Session-key derivation and payload encryption (the §XI extension).

From one master secret (K_local or K_port) the KDF derives a family of
"cryptographically unrelated" keys, exactly as §XI suggests: an
authentication key, an encryption key, and a nonce base.  Distinct
fixed labels feed the KDF's salt input, so the derived keys differ even
though they share the master.

Message protection composes **encrypt-then-MAC**: the value field is
encrypted first, then the digest is computed over the ciphertext
message.  Verification therefore rejects tampered ciphertexts *before*
any decryption happens — the same order a data plane would need, since
decrypting costs hash units.

Nonces: the P4Auth header's sequence number, tweaked with a direction
bit (requests use ``2*seq``, responses ``2*seq + 1``), unique per key
epoch because the key rolls long before the 32-bit counter wraps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import Kdf
from repro.crypto.stream import crypt_word

# Fixed, public derivation labels (the KDF salt for each derived key).
LABEL_AUTH = 0x5034417574684155   # "P4Auth" || "AU"
LABEL_ENC = 0x50344175746845_4E   # "P4Auth" || "EN"
LABEL_NONCE = 0x503441757468_4E4F  # "P4Auth" || "NO"

_default_kdf = Kdf()


@dataclass(frozen=True)
class SessionKeys:
    """The key family derived from one master secret."""

    auth: int
    encryption: int
    nonce_base: int


def derive_session_keys(master: int, kdf: Kdf = _default_kdf) -> SessionKeys:
    """Derive {auth, encryption, nonce-base} from a master secret.

    Both endpoints call this on the same master, so both hold the same
    family without any additional message exchange.
    """
    return SessionKeys(
        auth=kdf.derive(master, LABEL_AUTH),
        encryption=kdf.derive(master, LABEL_ENC),
        nonce_base=kdf.derive(master, LABEL_NONCE),
    )


def request_nonce(keys: SessionKeys, seq_num: int) -> int:
    """Nonce for a C->DP request (direction bit 0)."""
    return (keys.nonce_base ^ (seq_num << 1)) & ((1 << 64) - 1)


def response_nonce(keys: SessionKeys, seq_num: int) -> int:
    """Nonce for a DP->C response (direction bit 1)."""
    return (keys.nonce_base ^ ((seq_num << 1) | 1)) & ((1 << 64) - 1)


def encrypt_value(keys: SessionKeys, seq_num: int, value: int,
                  response: bool = False) -> int:
    """Encrypt a 64-bit register value (involutive: call again to
    decrypt)."""
    nonce = response_nonce(keys, seq_num) if response \
        else request_nonce(keys, seq_num)
    return crypt_word(keys.encryption, nonce, value)
