"""Declared verify-IR for the P4Auth data-plane program (Table II base).

Two artifacts live here:

* :func:`p4auth_program` — the static declaration of "baseline L3
  forwarding + the P4Auth overlay" in the :mod:`repro.verify.ir` form.
  Its table/register/hash/header inventory mirrors
  :func:`repro.core.program.p4auth_program_spec` *number for number*, so
  the resource linter's static totals and the dynamic Table II
  reproduction agree (acceptance tolerance: 0.5 percentage points).  Its
  op lists model the verify/sign/key-exchange data paths at the
  granularity the taint engine needs: every place key material is read,
  every digest, every KDF, every emission.
* :func:`build_reference_switch` — a live switch carrying the same
  program (baseline tables sized per §IX-B, P4Auth installed, one mapped
  register), for the :mod:`repro.verify.live` declared-vs-installed
  cross-check.

Modeling notes for the taint engine:

- Key-register reads (``p4auth_keys_v*``) yield SECRET metadata; the
  only ops consuming it are keyed ``HashDigest`` invocations (Eqn 4
  digests), whose DIGEST_OK outputs are what reaches the wire.
- Fresh DH exponents enter via the PRNG (no stored-secret provenance, so
  PUBLIC at birth); secrecy attaches when they are stored in the
  ``p4auth_pending_*`` arrays, which are labeled SECRET sources.
- The KDF output (session/master keys) is SECRET by construction and
  flows only into key registers.
"""

from __future__ import annotations

from repro.core.constants import (
    ADHKD_HEADER,
    ALERT_HEADER,
    EAK_HEADER,
    KEYCTL_HEADER,
    KEY_VERSIONS,
    P4AUTH_HEADER,
    REG_OP_HEADER,
)
from repro.core.secrets import is_secret_register
from repro.verify.ir import (
    ApplyTable,
    BinOp,
    Const,
    EmitPacket,
    FieldRef,
    HashDecl,
    HashDigest,
    HeaderDecl,
    KdfDerive,
    MetaRef,
    Program,
    RegRead,
    RegReadModifyWrite,
    RegWrite,
    RegisterDecl,
    RequireValid,
    SendToController,
    SetField,
    SetMeta,
    StageDecl,
    TableDecl,
)

#: Table II evaluation point: 64-port switch, one mapped register.
NUM_PORTS = 64
MAPPED_REGISTERS = 1


def _register_decls(num_ports: int) -> list:
    size = num_ports + 1
    layout = [
        ("p4auth_keys_v0", 64, size),
        ("p4auth_keys_v1", 64, size),
        ("p4auth_key_version", 8, size),
        ("p4auth_kauth", 64, 1),
        ("p4auth_expected_seq", 32, 1),
        ("p4auth_dp_seq", 32, 1),
        ("p4auth_port_seq", 32, size),
        ("p4auth_pending_r1", 64, size),
        ("p4auth_pending_s1", 64, size),
        ("p4auth_alert_count", 32, 1),
        ("flow_stats", 32, 8192),
    ]
    return [
        RegisterDecl(name, width, size_, secret=is_secret_register(name))
        for name, width, size_ in layout
    ]


def _verify_stage() -> StageDecl:
    """The ``p4auth_verify`` ingress stage: authenticate, then dispatch."""
    ops = (
        RequireValid("p4auth"),
        SetMeta("ingress_port", Const(0, 16)),
        # -- digest verification (Eqn 4) -------------------------------
        RegRead("p4auth_key_version", Const(0), "active_ver"),
        RegRead("p4auth_keys_v0", Const(0), "auth_key"),
        HashDigest("digest_rx", (
            MetaRef("auth_key"),
            FieldRef("p4auth", "hdrType"),
            FieldRef("p4auth", "msgType"),
            FieldRef("p4auth", "seqNum"),
            FieldRef("p4auth", "keyVer"),
            FieldRef("p4auth", "length"),
        ), keyed=True, extern="digest_verify"),
        SetMeta("digest_ok", BinOp("xor", (
            MetaRef("digest_rx"), FieldRef("p4auth", "digest")))),
        # -- replay window (§VIII) -------------------------------------
        RegRead("p4auth_expected_seq", Const(0), "expected_seq"),
        RegWrite("p4auth_expected_seq", Const(0), BinOp("add", (
            FieldRef("p4auth", "seqNum"), Const(1)))),
        RegRead("p4auth_port_seq", MetaRef("ingress_port"), "port_seq"),
        RegWrite("p4auth_port_seq", MetaRef("ingress_port"),
                 FieldRef("p4auth", "seqNum")),
        # -- authenticated register op (Fig 15) ------------------------
        RequireValid("reg_op"),
        SetMeta("op_index", FieldRef("reg_op", "index")),
        ApplyTable("reg_id_to_name_mapping", (
            FieldRef("reg_op", "regId"), FieldRef("p4auth", "msgType"))),
        RegRead("flow_stats", MetaRef("op_index"), "op_result"),
        SetField("reg_op", "value", MetaRef("op_result")),
        # -- EAK respond (Fig 11): derive and store K_auth -------------
        RequireValid("eak"),
        KdfDerive("k_auth", (FieldRef("eak", "salt"),),
                  extern="kdf_prf_extract_expand"),
        RegWrite("p4auth_kauth", Const(0), MetaRef("k_auth")),
        # -- ADHKD legs (Figs 12/14) -----------------------------------
        RequireValid("adhkd"),
        RequireValid("keyctl"),
        SetMeta("ctl_port", FieldRef("keyctl", "port")),
        SetMeta("dh_r2", Const(0, 64)),  # fresh PRNG exponent
        RegWrite("p4auth_pending_r1", MetaRef("ctl_port"),
                 MetaRef("dh_r2")),
        RegWrite("p4auth_pending_s1", MetaRef("ctl_port"),
                 FieldRef("adhkd", "salt")),
        KdfDerive("master_key", (
            FieldRef("adhkd", "pk"), FieldRef("adhkd", "salt")),
            extern="kdf_prf_extract_expand"),
        RegWrite("p4auth_keys_v1", MetaRef("ctl_port"),
                 MetaRef("master_key")),
        # The outgoing public key is the one-way image of the fresh
        # exponent (g^r2): unkeyed hash over PUBLIC provenance.
        HashDigest("dh_pk2", (MetaRef("dh_r2"),), keyed=False,
                   extern="key_exchange_auth"),
        SetField("adhkd", "pk", MetaRef("dh_pk2")),
        # -- alert path (rate-limited, §VIII) --------------------------
        RequireValid("alert"),
        RegReadModifyWrite("p4auth_alert_count", Const(0), Const(1),
                           "alert_n"),
        SetField("alert", "code", Const(1, 8)),
        SetField("alert", "detail", MetaRef("op_index")),
        # -- signed responses toward the controller --------------------
        HashDigest("resp_digest", (
            MetaRef("auth_key"),
            FieldRef("p4auth", "seqNum"),
            FieldRef("reg_op", "value"),
            FieldRef("alert", "code"),
        ), keyed=True, extern="digest_sign"),
        SetField("p4auth", "digest", MetaRef("resp_digest")),
        SendToController(fields=(
            FieldRef("p4auth", "digest"),
            FieldRef("reg_op", "value"),
            FieldRef("adhkd", "pk"),
            FieldRef("alert", "code"),
        )),
    )
    return StageDecl("p4auth_verify", ops)


def _l3fwd_stage() -> StageDecl:
    """The protected base program: LPM route + L2 rewrite + stats."""
    ops = (
        RequireValid("ethernet"),
        RequireValid("ipv4"),
        SetField("ipv4", "ttl", BinOp("sub", (
            FieldRef("ipv4", "ttl"), Const(1, 8)))),
        SetMeta("egress_port", Const(0, 16)),
        ApplyTable("ipv4_lpm", (FieldRef("ipv4", "dst"),)),
        ApplyTable("l2_rewrite", (MetaRef("egress_port"),)),
        RegReadModifyWrite("flow_stats", FieldRef("ipv4", "flow_id"),
                           Const(1), "flow_count"),
    )
    return StageDecl("l3fwd", ops)


def _sign_stage() -> StageDecl:
    """The ``p4auth_sign`` egress stage: digest everything leaving."""
    ops = (
        RegRead("p4auth_keys_v0", Const(0), "sign_key"),
        RegReadModifyWrite("p4auth_dp_seq", Const(0), Const(1), "dp_seq"),
        SetField("p4auth", "seqNum", MetaRef("dp_seq")),
        HashDigest("out_digest", (
            MetaRef("sign_key"),
            FieldRef("p4auth", "hdrType"),
            FieldRef("p4auth", "seqNum"),
            FieldRef("p4auth", "length"),
        ), keyed=True, extern="digest_sign"),
        SetField("p4auth", "digest", MetaRef("out_digest")),
        EmitPacket(headers=("ethernet", "ipv4", "p4auth", "reg_op"),
                   fields=(FieldRef("p4auth", "digest"),)),
    )
    return StageDecl("p4auth_sign", ops)


def p4auth_program(num_ports: int = NUM_PORTS,
                   mapped_registers: int = MAPPED_REGISTERS) -> Program:
    """The full declared program: baseline L3 forwarding + P4Auth."""
    program = Program("p4auth")
    program.registers = _register_decls(num_ports)
    program.tables = [
        TableDecl("ipv4_lpm", key_bits=32, entries=12288,
                  match_kind="lpm", action_bits=64),
        TableDecl("l2_rewrite", key_bits=48, entries=16384,
                  match_kind="exact", action_bits=80),
        TableDecl("reg_id_to_name_mapping", key_bits=40,
                  entries=max(1024, 2 * mapped_registers),
                  match_kind="exact", action_bits=32),
    ]
    program.hashes = [
        HashDecl("digest_verify", 14),
        HashDecl("digest_sign", 14),
        HashDecl("kdf_prf_extract_expand", 4),
        HashDecl("key_exchange_auth", 2),
        HashDecl("alert_sign", 1),
    ]
    program.headers = [
        HeaderDecl("ethernet", (("dst", 48), ("src", 48), ("etherType", 16))),
        HeaderDecl("ipv4", (("src", 32), ("dst", 32), ("ttl", 8),
                            ("proto", 8), ("flow_id", 16),
                            ("options", 64))),  # pads to the 160b claim
        HeaderDecl("intrinsic_metadata", (("data", 480),)),
        HeaderDecl("p4auth", tuple(P4AUTH_HEADER.fields)),
        HeaderDecl("reg_op", tuple(REG_OP_HEADER.fields)),
        HeaderDecl("adhkd", tuple(ADHKD_HEADER.fields)),
        HeaderDecl("eak", tuple(EAK_HEADER.fields)),
        HeaderDecl("keyctl", tuple(KEYCTL_HEADER.fields)),
        HeaderDecl("alert", tuple(ALERT_HEADER.fields)),
        HeaderDecl("p4auth_metadata", (("scratch", 288),)),
    ]
    program.stages = [_verify_stage(), _l3fwd_stage(), _sign_stage()]
    assert KEY_VERSIONS == 2, "register layout assumes two key versions"
    return program


def build_reference_switch(num_ports: int = NUM_PORTS):
    """A live switch running the declared program, for repro.verify.live.

    Baseline tables are sized per §IX-B (12288 LPM routes, 16384 exact
    adjacencies, 8192 stats cells) rather than the smaller defaults the
    scenario harnesses use, so the installed objects match the Table II
    declaration above.
    """
    from repro.core.auth_dataplane import P4AuthDataplane
    from repro.dataplane.switch import DataplaneSwitch
    from repro.dataplane.tables import MatchActionTable, MatchKind

    switch = DataplaneSwitch("p4auth-ref", num_ports=num_ports)
    route = MatchActionTable(
        "ipv4_lpm", [("dst", MatchKind.LPM, 32)], max_entries=12288)
    route.register_action("set_egress", lambda **_: None)
    route.register_action("drop", lambda **_: None)
    route.set_default("drop")
    switch.add_table(route)
    rewrite = MatchActionTable(
        "l2_rewrite", [("dst_mac", MatchKind.EXACT, 48)],
        max_entries=16384)
    rewrite.register_action("rewrite", lambda **_: None)
    rewrite.set_default("rewrite")
    switch.add_table(rewrite)
    switch.registers.define("flow_stats", 32, 8192)
    switch.pipeline.add_stage("l3fwd", lambda ctx: None)
    auth = P4AuthDataplane(switch, k_seed=0x5EED).install()
    auth.map_register("flow_stats")
    return switch


def reference_utilization_pct() -> dict:
    """The dynamic Table II utilization numbers, keyed for RES003."""
    from repro.core.program import p4auth_program_spec
    from repro.dataplane.resources import ResourceModel

    report = ResourceModel().report(
        p4auth_program_spec(NUM_PORTS, MAPPED_REGISTERS))
    return {
        "tcam_blocks": report.tcam_pct,
        "sram_blocks": report.sram_pct,
        "hash_units": report.hash_pct,
        "phv_containers": report.phv_pct,
    }
