"""Builders and digest material for P4Auth protocol messages.

A P4Auth message is a packet carrying the 14-byte ``p4auth`` header plus
one payload header (``reg_op``, ``eak``, ``adhkd``, ``keyctl``, or
``alert``).  The digest (Eqn. 4) is computed over every p4auth header
field except ``digest`` itself, concatenated with the serialized payload:

    digest = HMAC_K(p4Auth_h || p4Auth_payload)

Builders return packets with ``digest = 0``; callers sign them with a
:class:`repro.core.digest.DigestEngine` (the data plane's sign stage, the
controller's compose path, or the KMP).
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import (
    ADHKD,
    ADHKD_HEADER,
    ALERT,
    ALERT_HEADER,
    EAK,
    EAK_HEADER,
    KEYCTL,
    KEYCTL_HEADER,
    P4AUTH,
    P4AUTH_HEADER,
    REG_OP,
    REG_OP_HEADER,
    AlertCode,
    HdrType,
    KeyExchType,
    RegOpType,
)
from repro.dataplane.packet import Packet

#: Header-stack names of all recognized P4Auth payloads, in match order.
PAYLOAD_NAMES = (REG_OP, EAK, ADHKD, KEYCTL, ALERT)


def _base_packet(hdr_type: HdrType, msg_type: int, seq_num: int,
                 key_ver: int, payload_name: str, payload) -> Packet:
    packet = Packet()
    p4auth = P4AUTH_HEADER.instantiate(
        hdrType=int(hdr_type),
        msgType=int(msg_type),
        seqNum=seq_num,
        keyVer=key_ver,
        flags=0,
        length=payload.header_type.byte_width,
        digest=0,
    )
    packet.push(P4AUTH, p4auth)
    packet.push(payload_name, payload)
    return packet


def build_reg_read_request(reg_id: int, index: int, seq_num: int,
                           key_ver: int = 0) -> Packet:
    """``readReq``: controller asks the data plane for a register value."""
    payload = REG_OP_HEADER.instantiate(regId=reg_id, index=index, value=0)
    return _base_packet(HdrType.REGISTER_OP, RegOpType.READ_REQ, seq_num,
                        key_ver, REG_OP, payload)


def build_reg_write_request(reg_id: int, index: int, value: int,
                            seq_num: int, key_ver: int = 0) -> Packet:
    """``writeReq``: controller writes a register cell in the data plane."""
    payload = REG_OP_HEADER.instantiate(regId=reg_id, index=index, value=value)
    return _base_packet(HdrType.REGISTER_OP, RegOpType.WRITE_REQ, seq_num,
                        key_ver, REG_OP, payload)


def build_reg_response(ok: bool, reg_id: int, index: int, value: int,
                       seq_num: int, key_ver: int = 0) -> Packet:
    """``ack`` / ``nAck``: data plane's response, echoing the request seq."""
    payload = REG_OP_HEADER.instantiate(regId=reg_id, index=index, value=value)
    msg_type = RegOpType.ACK if ok else RegOpType.NACK
    return _base_packet(HdrType.REGISTER_OP, msg_type, seq_num, key_ver,
                        REG_OP, payload)


def build_eak_message(msg_type: KeyExchType, salt: int, seq_num: int,
                      key_ver: int = 0) -> Packet:
    """EAK salt exchange message (Fig 11); total wire size 22 bytes."""
    if msg_type not in (KeyExchType.EAK_SALT1, KeyExchType.EAK_SALT2):
        raise ValueError(f"{msg_type!r} is not an EAK message type")
    payload = EAK_HEADER.instantiate(salt=salt)
    return _base_packet(HdrType.KEY_EXCHANGE, msg_type, seq_num, key_ver,
                        EAK, payload)


def build_adhkd_message(msg_type: KeyExchType, pk: int, salt: int,
                        seq_num: int, key_ver: int = 0) -> Packet:
    """ADHKD / updKeyExch message (Fig 12, Fig 14); wire size 30 bytes."""
    if msg_type not in (KeyExchType.ADHKD_MSG1, KeyExchType.ADHKD_MSG2,
                        KeyExchType.UPD_MSG1, KeyExchType.UPD_MSG2):
        raise ValueError(f"{msg_type!r} is not an ADHKD message type")
    payload = ADHKD_HEADER.instantiate(pk=pk, salt=salt)
    return _base_packet(HdrType.KEY_EXCHANGE, msg_type, seq_num, key_ver,
                        ADHKD, payload)


def build_keyctl_message(msg_type: KeyExchType, port: int, seq_num: int,
                         key_ver: int = 0) -> Packet:
    """portKeyInit / portKeyUpdate (Fig 14); total wire size 18 bytes."""
    if msg_type not in (KeyExchType.PORT_KEY_INIT, KeyExchType.PORT_KEY_UPDATE):
        raise ValueError(f"{msg_type!r} is not a key-control message type")
    payload = KEYCTL_HEADER.instantiate(port=port)
    return _base_packet(HdrType.KEY_EXCHANGE, msg_type, seq_num, key_ver,
                        KEYCTL, payload)


def build_alert(code: AlertCode, detail: int, seq_num: int,
                key_ver: int = 0) -> Packet:
    """Alert from the data plane toward the controller (§VIII)."""
    payload = ALERT_HEADER.instantiate(code=int(code), detail=detail)
    return _base_packet(HdrType.ALERT, 0, seq_num, key_ver, ALERT, payload)


def payload_of(packet: Packet) -> Optional[str]:
    """Name of the packet's P4Auth payload header, if any."""
    for name in PAYLOAD_NAMES:
        if packet.has(name):
            return name
    return None


def digest_material(packet: Packet) -> bytes:
    """The byte string the digest is computed over (Eqn. 4).

    All p4auth header fields except ``digest``, serialized in declaration
    order, followed by the serialized payload header and any residual
    payload bytes.  Protected non-P4Auth headers riding on the same packet
    (e.g., a HULA probe being authenticated DP-DP) are also covered, so a
    MitM cannot tamper with the probe body while leaving the P4Auth
    fields intact.
    """
    p4auth = packet.get(P4AUTH)
    material = bytearray()
    for value in p4auth.field_words(exclude=("digest",)):
        # Fields have mixed widths; serialize each at 8 bytes for a fixed,
        # unambiguous layout (this mirrors PHV container granularity).
        material += int(value).to_bytes(8, "little")
    for name in packet.header_names():
        if name == P4AUTH:
            continue
        material += packet.get(name).serialize()
    material += packet.payload
    return bytes(material)
