"""The P4Auth controller.

Composes authenticated register read/write requests, verifies responses,
logs data-plane alerts, runs the controller side of the key-management
protocol (via :class:`~repro.core.kmp.KeyManagementProtocol`), and applies
the §VIII DoS heuristics (outstanding-request threshold, unacknowledged
sequence tracking).

The controller's view of the world is exactly what the paper grants it: it
shares ``K_seed`` with each switch binary, learns register identifiers
from the p4info-equivalent id map at provisioning time, and afterwards
talks to data planes only through (possibly adversarial) control channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.auth_dataplane import FLAG_ENCRYPTED, P4AuthDataplane
from repro.core.confidentiality import derive_session_keys, encrypt_value
from repro.core.constants import (
    ALERT,
    P4AUTH,
    REG_OP,
    AlertCode,
    HdrType,
    RegOpType,
)
from repro.core.digest import DigestEngine
from repro.core.keys import ControllerKeyStore
from repro.core.messages import (
    build_reg_read_request,
    build_reg_write_request,
)
from repro.crypto.prng import XorShiftPrng
from repro.dataplane.packet import Packet
from repro.net.network import Network
from repro.telemetry import RCT_BUCKETS

ResponseCallback = Callable[[bool, int], None]

#: Buckets for the signed-burst size histogram (requests per sign call).
SIGN_BATCH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class AlertRecord:
    """One alert received from a data plane."""

    time: float
    switch: str
    code: AlertCode
    detail: int


@dataclass
class TamperRecord:
    """A response whose digest failed verification at the controller."""

    time: float
    switch: str
    seq_num: int
    reason: str


@dataclass
class RctSample:
    """One completed request's timing, for Fig 18/19."""

    kind: str  # "read" | "write"
    switch: str
    rct_s: float
    ok: bool


@dataclass
class ControllerStats:
    requests_sent: int = 0
    acks_received: int = 0
    nacks_received: int = 0
    tampered_responses: int = 0
    alerts_received: int = 0
    unsolicited_responses: int = 0
    #: nAcks for requests this controller never sent — a strong signal
    #: that someone is injecting forged messages at the data plane.
    unsolicited_nacks: int = 0
    dos_suspected: bool = False
    #: Requests re-issued after a response timeout (bounded-retry mode).
    request_retries: int = 0
    #: Requests that exhausted ``max_request_attempts`` and surfaced a
    #: terminal ``callback(False, 0)`` instead of hanging forever.
    requests_abandoned: int = 0
    rct_samples: List[RctSample] = field(default_factory=list)


@dataclass
class _Pending:
    kind: str
    switch: str
    reg_name: str
    sent_at: float
    callback: Optional[ResponseCallback]
    index: int = 0
    value: int = 0
    attempt: int = 1
    timeout_handle: Optional[object] = None


class P4AuthController:
    """The logically centralized controller of the P4Auth deployment."""

    def __init__(self, network: Network, algorithm: str = "halfsiphash",
                 seed: int = 0xC0FFEE, outstanding_threshold: int = 1000,
                 encrypt_regops: bool = False,
                 request_timeout_s: Optional[float] = None,
                 max_request_attempts: int = 3,
                 digest_lane: str = "auto"):
        self.network = network
        self.sim = network.sim
        self.costs = network.costs
        self.telemetry = network.telemetry
        #: ``digest_lane`` forces the software digest lane ("scalar" /
        #: "vector") or leaves batch-size-based selection on ("auto").
        #: Tags are bit-identical either way — the knob exists so the
        #: lane-equivalence battery can pin that down.
        self.digest = DigestEngine(algorithm=algorithm, lane=digest_lane)
        self.keys = ControllerKeyStore()
        self.prng = XorShiftPrng(seed)
        self.stats = ControllerStats()
        self.alerts: List[AlertRecord] = []
        self.tamper_events: List[TamperRecord] = []
        self.outstanding_threshold = outstanding_threshold
        #: Opt-in bounded retries: when set, a request unanswered after
        #: this long is re-issued (fresh seq) up to ``max_request_attempts``
        #: times, then abandoned with a terminal ``callback(False, 0)``.
        #: ``None`` (the default) keeps the fire-and-wait behaviour that
        #: the DoS heuristics (``unacknowledged_seqs``) are tuned for.
        self.request_timeout_s = request_timeout_s
        self.max_request_attempts = max_request_attempts
        #: Encrypt register-op values end to end (the §XI extension);
        #: the matching switches must set P4AuthConfig.encrypt_regops.
        self.encrypt_regops = encrypt_regops
        self.on_tamper: List[Callable[[TamperRecord], None]] = []
        self.on_alert: List[Callable[[AlertRecord], None]] = []
        #: Optional observer ``seq_listener(switch, seq)`` fired inside
        #: :meth:`next_seq` *before* the number is handed to the caller
        #: — the durability layer journals sequence-horizon reservations
        #: here so a crash can never reuse a sequence number (the
        #: skip-ahead rule; see repro.store).
        self.seq_listener: Optional[Callable[[str, int], None]] = None
        #: Set by :meth:`halt` — a crashed process composes and sends
        #: nothing more, even if in-flight Python frames keep running.
        self.halted = False
        self._seq: Dict[str, int] = {}
        self._pending: Dict[Tuple[str, int], _Pending] = {}
        # Per-switch departure horizon for composed requests.  Compose
        # costs differ by kind (a read is ~6x cheaper to compose than a
        # write), so with overlapping composes a later-seq read would
        # depart before an earlier-seq write, the data plane's monotonic
        # expected_seq would jump past the write, and the write would be
        # rejected as a replay.  The compose pipeline is FIFO per
        # switch: a request never departs before one composed earlier.
        self._depart_horizon: Dict[str, float] = {}
        self._reg_ids: Dict[str, Dict[str, int]] = {}
        # Session-key fast path: ``derive_session_keys`` is a pure
        # function of the master key, so one derivation per live
        # (switch, key_ver) key serves a whole batch of encrypted
        # requests.  Keyed by master-key *value*: a rolled key gets a
        # fresh entry automatically and a stale one can never be reused.
        self._session_cache: Dict[int, object] = {}
        self.dataplanes: Dict[str, P4AuthDataplane] = {}
        network.attach_controller(self)
        # Constructed here to avoid exposing two objects users must wire up.
        from repro.core.kmp import KeyManagementProtocol
        self.kmp = KeyManagementProtocol(self)

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------

    def provision(self, dataplane: P4AuthDataplane) -> None:
        """Register a switch: share K_seed and learn its register ids.

        Mirrors switch bootup: K_seed rides in the P4 binary, and the
        compiler's p4info output gives the controller the register-id map.
        """
        name = dataplane.switch.name
        self.keys.set_seed(name, dataplane.k_seed)
        self._reg_ids[name] = {
            reg_name: reg_id
            for reg_id, reg_name in dataplane.switch.registers.id_map().items()
        }
        self._seq.setdefault(name, 1)
        self.dataplanes[name] = dataplane
        self.kmp.observe_dataplane(dataplane)

    def refresh_p4info(self, switch: str) -> None:
        """Re-read a provisioned switch's register-id map.

        Needed when program registers are declared after provisioning
        (e.g., a pipeline reconfiguration).
        """
        dataplane = self.dataplanes[switch]
        self._reg_ids[switch] = {
            reg_name: reg_id
            for reg_id, reg_name in dataplane.switch.registers.id_map().items()
        }

    def register_id(self, switch: str, reg_name: str) -> int:
        try:
            return self._reg_ids[switch][reg_name]
        except KeyError:
            raise KeyError(
                f"switch {switch!r} has no register {reg_name!r} "
                "(is it provisioned?)"
            ) from None

    def next_seq(self, switch: str) -> int:
        seq = self._seq[switch]
        if self.seq_listener is not None:
            self.seq_listener(switch, seq)
        self._seq[switch] = (seq + 1) & 0xFFFFFFFF
        return seq

    def restore_seq(self, switch: str, next_seq: int) -> None:
        """Warm-restart entry point: resume issuing at ``next_seq``.

        Recovery sets this to the last *journaled horizon* — at or past
        any number the dead controller could have used — so the data
        plane's monotonic ``expected_seq`` defense never sees a reuse.
        """
        self._seq[switch] = next_seq & 0xFFFFFFFF

    def halt(self) -> None:
        """Kill this controller instance (crash modeling).

        Cancels every pending-request timeout (a dead process has no
        timers), forgets in-flight state, and detaches from the network
        so late responses drop instead of reaching a ghost.  The object
        must not be used afterwards — recovery builds a fresh one.
        """
        self.halted = True
        for pending in self._pending.values():
            if pending.timeout_handle is not None:
                pending.timeout_handle.cancel()
        self._pending.clear()
        self._session_cache.clear()
        if self.network.controller is self:
            self.network.controller = None

    def _session_keys(self, switch: str, key_ver: int):
        """Session-key family for a switch's local key at ``key_ver``,
        memoized across a batch (see ``_session_cache``)."""
        master = self.keys.local_key(switch, key_ver)
        cached = self._session_cache.get(master)
        if cached is None:
            cached = derive_session_keys(master)
            if len(self._session_cache) >= 1024:
                self._session_cache.clear()
            self._session_cache[master] = cached
        return cached

    # ------------------------------------------------------------------
    # authenticated register operations (Fig 8)
    # ------------------------------------------------------------------

    def read_register(self, switch: str, reg_name: str, index: int,
                      callback: Optional[ResponseCallback] = None,
                      _attempt: int = 1) -> int:
        """Issue an authenticated ``readReq``; returns its seq number.

        ``callback(ok, value)`` fires when the (verified) response
        arrives.  A tampered response never reaches the callback — it is
        recorded as a :class:`TamperRecord` instead.
        """
        seq = self.next_seq(switch)
        request = build_reg_read_request(
            self.register_id(switch, reg_name), index, seq,
            key_ver=self.keys.local_key_version(switch),
        )
        if self.encrypt_regops:
            request.get(P4AUTH)["flags"] = FLAG_ENCRYPTED
        self._dispatch_request("read", switch, reg_name, seq, request,
                               callback, self.costs.compose_read_s,
                               index=index, value=0, attempt=_attempt)
        return seq

    def write_register(self, switch: str, reg_name: str, index: int,
                       value: int,
                       callback: Optional[ResponseCallback] = None,
                       _attempt: int = 1) -> int:
        """Issue an authenticated ``writeReq``; returns its seq number."""
        seq = self.next_seq(switch)
        key_ver = self.keys.local_key_version(switch)
        plain_value = value
        if self.encrypt_regops:
            session = self._session_keys(switch, key_ver)
            value = encrypt_value(session, seq, value)
        request = build_reg_write_request(
            self.register_id(switch, reg_name), index, value, seq,
            key_ver=key_ver,
        )
        if self.encrypt_regops:
            request.get(P4AUTH)["flags"] = FLAG_ENCRYPTED
        self._dispatch_request("write", switch, reg_name, seq, request,
                               callback, self.costs.compose_write_s,
                               index=index, value=plain_value,
                               attempt=_attempt)
        return seq

    def request_many(self, switch: str, ops: Sequence[Tuple],
                     ) -> List[int]:
        """Compose, sign, and dispatch a burst of requests to one switch.

        ``ops`` is a sequence of ``(kind, reg_name, index, value,
        callback)`` tuples (``value`` ignored for reads).  The burst is
        byte-identical to issuing each op through
        :meth:`read_register`/:meth:`write_register` back to back at the
        same instant — same sequence numbers, same per-request compose
        costs, same FIFO departure horizon — but the Eqn 4 digests are
        computed in one :meth:`DigestEngine.sign_many` call, which lets
        the engine take the vectorized lane for large bursts.  Returns
        the assigned sequence numbers in op order.
        """
        key = self.keys.local_key(switch)
        composed: List[Tuple] = []
        for kind, reg_name, index, value, callback in ops:
            seq = self.next_seq(switch)
            key_ver = self.keys.local_key_version(switch)
            if kind == "read":
                request = build_reg_read_request(
                    self.register_id(switch, reg_name), index, seq,
                    key_ver=key_ver)
                compose_cost = self.costs.compose_read_s
                plain_value = 0
            elif kind == "write":
                plain_value = value
                if self.encrypt_regops:
                    session = self._session_keys(switch, key_ver)
                    value = encrypt_value(session, seq, value)
                request = build_reg_write_request(
                    self.register_id(switch, reg_name), index, value, seq,
                    key_ver=key_ver)
                compose_cost = self.costs.compose_write_s
            else:
                raise ValueError(f"unknown request kind {kind!r}")
            if self.encrypt_regops:
                request.get(P4AUTH)["flags"] = FLAG_ENCRYPTED
            composed.append((kind, reg_name, seq, request, callback,
                             compose_cost, index, plain_value))
        self.digest.sign_many(key, [entry[3] for entry in composed])
        if self.telemetry.enabled and composed:
            self.telemetry.metrics.counter(
                "controller_sign_batches_total",
                lane=self.digest.lane_for(len(composed))).inc()
            self.telemetry.metrics.histogram(
                "controller_sign_batch_size",
                buckets=SIGN_BATCH_BUCKETS).observe(len(composed))
        for (kind, reg_name, seq, request, callback, compose_cost,
             index, plain_value) in composed:
            self._finalize_request(kind, switch, reg_name, seq, request,
                                   callback, compose_cost, index=index,
                                   value=plain_value, attempt=1)
        return [entry[2] for entry in composed]

    def _dispatch_request(self, kind: str, switch: str, reg_name: str,
                          seq: int, request: Packet,
                          callback: Optional[ResponseCallback],
                          compose_cost: float, index: int = 0,
                          value: int = 0, attempt: int = 1) -> None:
        self.digest.sign(self.keys.local_key(switch), request)
        self._finalize_request(kind, switch, reg_name, seq, request,
                               callback, compose_cost, index=index,
                               value=value, attempt=attempt)

    def _finalize_request(self, kind: str, switch: str, reg_name: str,
                          seq: int, request: Packet,
                          callback: Optional[ResponseCallback],
                          compose_cost: float, index: int = 0,
                          value: int = 0, attempt: int = 1) -> None:
        if self.halted:
            # A dead process's frame may still be mid-burst when the
            # kill lands: the request was composed but never reached
            # the NIC.  Dropping it here (no pending entry, no
            # departure) is the crash semantics recovery is built for.
            return
        pending = _Pending(
            kind, switch, reg_name, self.sim.now, callback,
            index=index, value=value, attempt=attempt,
        )
        self._pending[(switch, seq)] = pending
        self.stats.requests_sent += 1
        if len(self._pending) > self.outstanding_threshold:
            self.stats.dos_suspected = True
        depart_at = max(
            self.sim.now + compose_cost + self.costs.controller_digest_s,
            self._depart_horizon.get(switch, 0.0),
        )
        self._depart_horizon[switch] = depart_at
        self.sim.schedule_at(
            depart_at, self.network.send_packet_out, switch, request,
        )
        if self.request_timeout_s is not None:
            pending.timeout_handle = self.sim.schedule_cancellable(
                depart_at - self.sim.now + self.request_timeout_s,
                self._request_timed_out, switch, seq,
            )

    def _request_timed_out(self, switch: str, seq: int) -> None:
        pending = self._pending.pop((switch, seq), None)
        if pending is None:
            return  # answered in the meantime (handle raced cancellation)
        if pending.attempt >= self.max_request_attempts:
            self.stats.requests_abandoned += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "controller_requests_abandoned_total",
                    kind=pending.kind).inc()
                self.telemetry.tracer.emit(
                    "controller.request_abandoned", switch=switch,
                    kind=pending.kind, reg=pending.reg_name, seq=seq,
                    attempts=pending.attempt)
            if pending.callback is not None:
                pending.callback(False, 0)
            return
        self.stats.request_retries += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "controller_request_retries_total", kind=pending.kind).inc()
        if pending.kind == "read":
            self.read_register(switch, pending.reg_name, pending.index,
                               pending.callback,
                               _attempt=pending.attempt + 1)
        else:
            self.write_register(switch, pending.reg_name, pending.index,
                                pending.value, pending.callback,
                                _attempt=pending.attempt + 1)

    def outstanding_count(self) -> int:
        return len(self._pending)

    def unacknowledged_seqs(self, switch: str) -> List[int]:
        """Sequence numbers sent but not yet answered (§VIII DoS defense)."""
        return sorted(seq for (name, seq) in self._pending if name == switch)

    # ------------------------------------------------------------------
    # PacketIn handling
    # ------------------------------------------------------------------

    def handle_packet_in(self, switch: str, packet: Packet) -> None:
        """Entry point the network calls for every PacketIn message."""
        if not packet.has(P4AUTH):
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "controller_packet_in_total", switch=switch,
                    hdr_type="none").inc()
            self.stats.unsolicited_responses += 1
            return
        hdr = packet.get(P4AUTH)
        hdr_type = hdr["hdrType"]
        if self.telemetry.enabled:
            try:
                type_name = HdrType(hdr_type).name
            except ValueError:
                type_name = str(hdr_type)
            self.telemetry.metrics.counter(
                "controller_packet_in_total", switch=switch,
                hdr_type=type_name).inc()
            self.telemetry.tracer.emit("controller.packet_in", switch=switch,
                                       hdr_type=type_name,
                                       seq=hdr["seqNum"])
        if hdr_type == HdrType.REGISTER_OP:
            self._handle_reg_response(switch, packet, hdr)
        elif hdr_type == HdrType.ALERT:
            self._handle_alert(switch, packet, hdr)
        elif hdr_type == HdrType.KEY_EXCHANGE:
            self.kmp.handle_message(switch, packet)
        else:
            self.stats.unsolicited_responses += 1

    def _handle_reg_response(self, switch: str, packet: Packet, hdr) -> None:
        try:
            key = self.keys.local_key(switch, hdr["keyVer"])
        except KeyError:
            # A response for a switch this controller holds no key for —
            # possible while a warm restart is still re-establishing
            # partially-journaled key material.  Unverifiable, so it is
            # not acted on (and not a tamper claim either: there is no
            # key to judge the digest against).
            self.stats.unsolicited_responses += 1
            return
        if not self.digest.verify(key, packet):
            self._record_tamper(switch, hdr["seqNum"],
                               "register response digest mismatch")
            return
        seq = hdr["seqNum"]
        pending = self._pending.pop((switch, seq), None)
        if pending is not None and pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        if pending is None:
            # An authenticated duplicate (replayed response) or a response
            # to a request we gave up on — or, for nAcks, fallout from an
            # adversary injecting forged requests at the data plane.
            self.stats.unsolicited_responses += 1
            if hdr["msgType"] == RegOpType.NACK:
                self.stats.unsolicited_nacks += 1
            return
        ok = hdr["msgType"] == RegOpType.ACK
        value = packet.get(REG_OP)["value"]
        if hdr["flags"] & FLAG_ENCRYPTED:
            session = self._session_keys(switch, hdr["keyVer"])
            value = encrypt_value(session, seq, value, response=True)
        if ok:
            self.stats.acks_received += 1
        else:
            self.stats.nacks_received += 1
        # Response verification costs one controller-side digest.
        rct = (self.sim.now + self.costs.controller_digest_s) - pending.sent_at
        self.stats.rct_samples.append(
            RctSample(pending.kind, switch, rct, ok)
        )
        if self.telemetry.enabled:
            self.telemetry.metrics.histogram(
                "runtime_rct_seconds", buckets=RCT_BUCKETS,
                stack="P4Auth", kind=pending.kind).observe(rct)
        if pending.callback is not None:
            self.sim.schedule(self.costs.controller_digest_s,
                              pending.callback, ok, value)

    def _handle_alert(self, switch: str, packet: Packet, hdr) -> None:
        # Alerts are signed with the best key the DP had at the time
        # (local key, falling back to K_auth, falling back to K_seed).
        candidates = []
        if self.keys.has_local_key(switch):
            candidates.append(self.keys.local_key(switch, hdr["keyVer"]))
        if self.keys.has_auth_key(switch):
            candidates.append(self.keys.auth_key(switch))
        candidates.append(self.keys.seed(switch))
        if not any(self.digest.verify(key, packet) for key in candidates):
            self._record_tamper(switch, hdr["seqNum"], "alert digest mismatch")
            return
        payload = packet.get(ALERT)
        record = AlertRecord(
            self.sim.now, switch, AlertCode(payload["code"]), payload["detail"]
        )
        self.alerts.append(record)
        self.stats.alerts_received += 1
        for hook in self.on_alert:
            hook(record)

    def _record_tamper(self, switch: str, seq: int, reason: str) -> None:
        record = TamperRecord(self.sim.now, switch, seq, reason)
        self.tamper_events.append(record)
        self.stats.tampered_responses += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("controller_tamper_total",
                                           switch=switch).inc()
            self.telemetry.tracer.emit("controller.tamper", switch=switch,
                                       seq=seq, reason=reason)
        for hook in self.on_tamper:
            hook(record)
