"""Digest computation and verification (the paper's Eqn. 4).

One :class:`DigestEngine` instance lives in each data plane (wrapping the
switch's hash extern, so invocations are charged to hash units and to the
timing model) and one at the controller (wrapping a plain software hash).
Both compute:

    digest = HMAC_K(p4Auth_h || p4Auth_payload)
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import P4AUTH
from repro.core.messages import digest_material
from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash
from repro.dataplane.externs import HashExtern
from repro.dataplane.packet import Packet


class DigestEngine:
    """Signs and verifies P4Auth messages with a keyed 32-bit digest.

    Parameters
    ----------
    extern:
        A switch's :class:`HashExtern`.  When given, digests run through
        it (counting invocations for the resource/timing models).  When
        None, a software engine is used (the controller side).
    algorithm:
        Software-engine algorithm when ``extern`` is None:
        ``"halfsiphash"`` (BMv2 flavor) or ``"crc32"`` (Tofino flavor).
    """

    #: Per-key schedule cache bound: two live versions per switch means a
    #: controller serving hundreds of switches stays far below this; the
    #: bound only guards against pathological key churn.
    KEY_CACHE_MAX = 1024

    def __init__(self, extern: Optional[HashExtern] = None,
                 algorithm: str = "halfsiphash"):
        self._extern = extern
        self._halfsiphash: Optional[HalfSipHash] = None
        if extern is None:
            if algorithm == "halfsiphash":
                self._halfsiphash = HalfSipHash()
                self._software = self._halfsiphash.digest
            elif algorithm == "crc32":
                crc = Crc32()
                self._software = crc.compute_keyed
            else:
                raise ValueError(f"unknown algorithm {algorithm!r}")
            self.algorithm = algorithm
        else:
            self._software = None
            self.algorithm = extern.algorithm
        # Software fast path: HalfSipHash's initial state depends only on
        # the key, so a batch of messages signed/verified under one
        # (switch, key_ver) key reuses a cached schedule instead of
        # re-deriving it per message.  Purely a host-CPU optimization —
        # the tag is bit-identical and extern (data-plane) digests are
        # untouched, so modeled hash-unit charges do not change.
        self._key_states: dict = {}
        self.key_state_hits = 0
        self.key_state_misses = 0
        self.computed = 0
        self.verified_ok = 0
        self.verified_fail = 0

    def compute(self, key: int, packet: Packet) -> int:
        """The digest value for ``packet`` under ``key`` (does not sign)."""
        material = digest_material(packet)
        self.computed += 1
        if self._extern is not None:
            return self._extern.compute_digest_bytes(key, material)
        if self._halfsiphash is not None:
            state = self._key_states.get(key)
            if state is None:
                self.key_state_misses += 1
                state = self._halfsiphash.key_schedule(key)
                if len(self._key_states) >= self.KEY_CACHE_MAX:
                    self._key_states.clear()
                self._key_states[key] = state
            else:
                self.key_state_hits += 1
            return self._halfsiphash.digest_from_state(state, material)
        return self._software(key, material)

    def sign(self, key: int, packet: Packet) -> Packet:
        """Fill the packet's digest field in place and return it."""
        digest = self.compute(key, packet)
        packet.get(P4AUTH)["digest"] = digest
        return packet

    def verify(self, key: int, packet: Packet) -> bool:
        """True iff the packet's digest field matches the recomputation."""
        claimed = packet.get(P4AUTH)["digest"]
        actual = self.compute(key, packet)
        if claimed == actual:
            self.verified_ok += 1
            return True
        self.verified_fail += 1
        return False
