"""Digest computation and verification (the paper's Eqn. 4).

One :class:`DigestEngine` instance lives in each data plane (wrapping the
switch's hash extern, so invocations are charged to hash units and to the
timing model) and one at the controller (wrapping a plain software hash).
Both compute:

    digest = HMAC_K(p4Auth_h || p4Auth_payload)

The controller-side software engine has two lanes:

- the **scalar lane** — one message at a time, as the paper describes;
- the **vector lane** (:mod:`repro.crypto.vectorized`) — whole batches
  per call, selected transparently by :meth:`compute_many` when a batch
  is at least :attr:`vector_threshold` messages (or forced via
  ``lane="vector"``/``lane="scalar"``).

Lane selection is a host-CPU scheduling decision only: tags are
bit-identical across lanes (pinned by the differential battery), so which
lane signed a message can never change observable wire behavior.  Extern
(data-plane) digests always run per-packet so hash-unit invocation
accounting is untouched.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.constants import P4AUTH
from repro.core.messages import digest_material
from repro.crypto import vectorized
from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash
from repro.dataplane.externs import HashExtern
from repro.dataplane.packet import Packet

#: Valid values for the engine's ``lane`` knob.
LANES = ("auto", "scalar", "vector")


class DigestEngine:
    """Signs and verifies P4Auth messages with a keyed 32-bit digest.

    Parameters
    ----------
    extern:
        A switch's :class:`HashExtern`.  When given, digests run through
        it (counting invocations for the resource/timing models).  When
        None, a software engine is used (the controller side).
    algorithm:
        Software-engine algorithm when ``extern`` is None:
        ``"halfsiphash"`` (BMv2 flavor) or ``"crc32"`` (Tofino flavor).
    lane:
        Software batch-lane policy: ``"auto"`` (vector at or above
        :attr:`vector_threshold` when numpy is importable), ``"vector"``
        (always batch through :mod:`repro.crypto.vectorized`, stdlib
        fallback included), or ``"scalar"`` (never).
    vector_threshold:
        Batch size at which ``"auto"`` switches lanes; defaults to
        :attr:`VECTOR_THRESHOLD`.
    """

    #: Per-key schedule cache bound: two live versions per switch means a
    #: controller serving hundreds of switches stays far below this; the
    #: bound only guards against pathological key churn.  The bound
    #: covers *every* lane — the vector lane reuses the same cache, so a
    #: rolled master key auto-misses there too.
    KEY_CACHE_MAX = 1024

    #: Default ``"auto"`` lane crossover.  Below this, numpy's per-call
    #: overhead beats the scalar loop's per-message cost; measured
    #: breakeven on C-DP-sized material is ~10-20 messages.
    VECTOR_THRESHOLD = 32

    def __init__(self, extern: Optional[HashExtern] = None,
                 algorithm: str = "halfsiphash", lane: str = "auto",
                 vector_threshold: Optional[int] = None):
        if lane not in LANES:
            raise ValueError(f"lane must be one of {LANES}")
        self._extern = extern
        self._halfsiphash: Optional[HalfSipHash] = None
        self._crc: Optional[Crc32] = None
        if extern is None:
            if algorithm == "halfsiphash":
                self._halfsiphash = HalfSipHash()
                self._software = self._halfsiphash.digest
            elif algorithm == "crc32":
                self._crc = Crc32()
                self._software = self._crc.compute_keyed
            else:
                raise ValueError(f"unknown algorithm {algorithm!r}")
            self.algorithm = algorithm
        else:
            self._software = None
            self.algorithm = extern.algorithm
        self.lane = lane
        self.vector_threshold = (self.VECTOR_THRESHOLD
                                 if vector_threshold is None
                                 else vector_threshold)
        # Software fast path: HalfSipHash's initial state depends only on
        # the key, so a batch of messages signed/verified under one
        # (switch, key_ver) key reuses a cached schedule instead of
        # re-deriving it per message.  Purely a host-CPU optimization —
        # the tag is bit-identical and extern (data-plane) digests are
        # untouched, so modeled hash-unit charges do not change.  Both
        # lanes share this one cache: eviction and rollover auto-miss
        # (the cache is keyed by master-key *value*) apply uniformly.
        self._key_states: dict = {}
        self.key_state_hits = 0
        self.key_state_misses = 0
        self.computed = 0
        self.verified_ok = 0
        self.verified_fail = 0
        #: Lane-selection telemetry: batches and messages per lane.
        self.vector_batches = 0
        self.scalar_batches = 0
        self.vector_messages = 0
        self.scalar_messages = 0

    # ------------------------------------------------------------------
    # lane selection
    # ------------------------------------------------------------------

    def lane_for(self, batch_size: int) -> str:
        """Which lane a ``batch_size``-message batch would take."""
        if self._extern is not None:
            return "extern"
        if self.lane == "scalar":
            return "scalar"
        if self.lane == "vector":
            return "vector"
        if batch_size >= self.vector_threshold and vectorized.HAVE_NUMPY:
            return "vector"
        return "scalar"

    def _schedule(self, key: int) -> Tuple[int, int, int, int]:
        """The cached HalfSipHash key schedule for ``key`` (all lanes)."""
        state = self._key_states.get(key)
        if state is None:
            self.key_state_misses += 1
            state = self._halfsiphash.key_schedule(key)
            if len(self._key_states) >= self.KEY_CACHE_MAX:
                self._key_states.clear()
            self._key_states[key] = state
        else:
            self.key_state_hits += 1
        return state

    # ------------------------------------------------------------------
    # single-message path (unchanged semantics)
    # ------------------------------------------------------------------

    def compute(self, key: int, packet: Packet) -> int:
        """The digest value for ``packet`` under ``key`` (does not sign)."""
        material = digest_material(packet)
        self.computed += 1
        if self._extern is not None:
            return self._extern.compute_digest_bytes(key, material)
        if self._halfsiphash is not None:
            return self._halfsiphash.digest_from_state(
                self._schedule(key), material)
        return self._software(key, material)

    def sign(self, key: int, packet: Packet) -> Packet:
        """Fill the packet's digest field in place and return it."""
        digest = self.compute(key, packet)
        packet.get(P4AUTH)["digest"] = digest
        return packet

    def verify(self, key: int, packet: Packet) -> bool:
        """True iff the packet's digest field matches the recomputation."""
        claimed = packet.get(P4AUTH)["digest"]
        actual = self.compute(key, packet)
        if claimed == actual:
            self.verified_ok += 1
            return True
        self.verified_fail += 1
        return False

    # ------------------------------------------------------------------
    # batch path (vector lane above the threshold)
    # ------------------------------------------------------------------

    def compute_many(self, key: int, packets: Sequence[Packet]) -> List[int]:
        """Digest values for a batch of packets under one ``key``.

        Bit-identical to ``[self.compute(key, p) for p in packets]`` —
        the lane only changes how many Python-interpreter round trips
        the batch costs.  Extern engines always compute per-packet so
        hash-unit invocation counts stay exactly the per-packet model.
        """
        count = len(packets)
        if count == 0:
            return []
        self.computed += count
        if self._extern is not None:
            extern = self._extern
            return [extern.compute_digest_bytes(key, digest_material(p))
                    for p in packets]
        materials = [digest_material(p) for p in packets]
        if self.lane_for(count) == "vector":
            self.vector_batches += 1
            self.vector_messages += count
            force_stdlib = not vectorized.HAVE_NUMPY
            if self._halfsiphash is not None:
                return vectorized.digest_many_from_state(
                    self._schedule(key), materials,
                    self._halfsiphash.compression_rounds,
                    self._halfsiphash.finalization_rounds,
                    force_stdlib=force_stdlib)
            return vectorized.crc32_many_keyed(key, materials,
                                               engine=self._crc,
                                               force_stdlib=force_stdlib)
        self.scalar_batches += 1
        self.scalar_messages += count
        if self._halfsiphash is not None:
            state = self._schedule(key)
            digest_from_state = self._halfsiphash.digest_from_state
            return [digest_from_state(state, m) for m in materials]
        software = self._software
        return [software(key, m) for m in materials]

    def sign_many(self, key: int, packets: Sequence[Packet]) -> Sequence[Packet]:
        """Fill every packet's digest field in place; returns the batch."""
        digests = self.compute_many(key, packets)
        for packet, digest in zip(packets, digests):
            packet.get(P4AUTH)["digest"] = digest
        return packets

    def verify_many(self, key: int, packets: Sequence[Packet]) -> List[bool]:
        """Per-packet verification verdicts for a batch under one key."""
        actuals = self.compute_many(key, packets)
        verdicts: List[bool] = []
        for packet, actual in zip(packets, actuals):
            ok = packet.get(P4AUTH)["digest"] == actual
            if ok:
                self.verified_ok += 1
            else:
                self.verified_fail += 1
            verdicts.append(ok)
        return verdicts
