"""Digest computation and verification (the paper's Eqn. 4).

One :class:`DigestEngine` instance lives in each data plane (wrapping the
switch's hash extern, so invocations are charged to hash units and to the
timing model) and one at the controller (wrapping a plain software hash).
Both compute:

    digest = HMAC_K(p4Auth_h || p4Auth_payload)
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import P4AUTH
from repro.core.messages import digest_material
from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash
from repro.dataplane.externs import HashExtern
from repro.dataplane.packet import Packet


class DigestEngine:
    """Signs and verifies P4Auth messages with a keyed 32-bit digest.

    Parameters
    ----------
    extern:
        A switch's :class:`HashExtern`.  When given, digests run through
        it (counting invocations for the resource/timing models).  When
        None, a software engine is used (the controller side).
    algorithm:
        Software-engine algorithm when ``extern`` is None:
        ``"halfsiphash"`` (BMv2 flavor) or ``"crc32"`` (Tofino flavor).
    """

    def __init__(self, extern: Optional[HashExtern] = None,
                 algorithm: str = "halfsiphash"):
        self._extern = extern
        if extern is None:
            if algorithm == "halfsiphash":
                engine = HalfSipHash()
                self._software = engine.digest
            elif algorithm == "crc32":
                crc = Crc32()
                self._software = crc.compute_keyed
            else:
                raise ValueError(f"unknown algorithm {algorithm!r}")
            self.algorithm = algorithm
        else:
            self._software = None
            self.algorithm = extern.algorithm
        self.computed = 0
        self.verified_ok = 0
        self.verified_fail = 0

    def compute(self, key: int, packet: Packet) -> int:
        """The digest value for ``packet`` under ``key`` (does not sign)."""
        material = digest_material(packet)
        self.computed += 1
        if self._extern is not None:
            return self._extern.compute_digest_bytes(key, material)
        return self._software(key, material)

    def sign(self, key: int, packet: Packet) -> Packet:
        """Fill the packet's digest field in place and return it."""
        digest = self.compute(key, packet)
        packet.get(P4AUTH)["digest"] = digest
        return packet

    def verify(self, key: int, packet: Packet) -> bool:
        """True iff the packet's digest field matches the recomputation."""
        claimed = packet.get(P4AUTH)["digest"]
        actual = self.compute(key, packet)
        if claimed == actual:
            self.verified_ok += 1
            return True
        self.verified_fail += 1
        return False
