"""P4Auth wire formats and protocol constants (paper Fig 7).

The P4Auth header is 14 bytes:

======== ====== =========================================================
field    bits   meaning
======== ====== =========================================================
hdrType    8    message class: register op / alert / key exchange
msgType    8    class-specific subtype (readReq, ack, EAK salt, ...)
seqNum    32    request/response correlation + replay defense (§VIII)
keyVer     8    which key version authenticated this message (§VI-C)
flags      8    reserved
length    16    payload byte length
digest    32    HMAC over header (sans digest) + payload (Eqn. 4)
======== ====== =========================================================

Payload formats are sized so the per-exchange byte totals reproduce
Table III exactly: EAK = 22 B, ADHKD = 30 B, portKeyInit/Update = 18 B
(see DESIGN.md, "Message-size calibration").
"""

from __future__ import annotations

import enum

from repro.dataplane.headers import HeaderType


class HdrType(enum.IntEnum):
    """Top-level message class carried in ``hdrType``."""

    REGISTER_OP = 1
    ALERT = 2
    KEY_EXCHANGE = 3
    DP_FEEDBACK = 4  # DP-DP in-network control message protection


class RegOpType(enum.IntEnum):
    """``msgType`` values when ``hdrType == REGISTER_OP`` (Fig 7)."""

    READ_REQ = 1
    WRITE_REQ = 2
    ACK = 3
    NACK = 4


class KeyExchType(enum.IntEnum):
    """``msgType`` values when ``hdrType == KEY_EXCHANGE`` (Fig 14)."""

    EAK_SALT1 = 1       # C -> DP, carries S1
    EAK_SALT2 = 2       # DP -> C, carries S2
    ADHKD_MSG1 = 3      # initiator -> responder: PK1, S1
    ADHKD_MSG2 = 4      # responder -> initiator: PK2, S2
    PORT_KEY_INIT = 5   # C -> DP: start port-key ADHKD via controller
    PORT_KEY_UPDATE = 6  # C -> DP: start port-key ADHKD directly over link
    UPD_MSG1 = 7        # updKeyExch leg 1: local-key update (K_local auth)
    UPD_MSG2 = 8        # updKeyExch leg 2


class AlertCode(enum.IntEnum):
    """Why the data plane raised an alert."""

    DIGEST_MISMATCH_CDP = 1
    DIGEST_MISMATCH_DPDP = 2
    REPLAY_SUSPECTED = 3
    UNKNOWN_REGISTER = 4
    KEY_EXCHANGE_TAMPER = 5
    UNAUTHENTICATED_REG_OP = 6


# ---------------------------------------------------------------------------
# Header type declarations
# ---------------------------------------------------------------------------

#: The 14-byte P4Auth header (Fig 7).
P4AUTH_HEADER = HeaderType("p4auth", [
    ("hdrType", 8),
    ("msgType", 8),
    ("seqNum", 32),
    ("keyVer", 8),
    ("flags", 8),
    ("length", 16),
    ("digest", 32),
])

#: Register read/write payload: identifier, index, and (for writes/acks)
#: the 64-bit value.  16 bytes.
REG_OP_HEADER = HeaderType("reg_op", [
    ("regId", 32),
    ("index", 32),
    ("value", 64),
])

#: EAK payload: one 64-bit salt.  8 bytes (message total 22 B).
EAK_HEADER = HeaderType("eak", [
    ("salt", 64),
])

#: ADHKD payload: public key + salt.  16 bytes (message total 30 B).
ADHKD_HEADER = HeaderType("adhkd", [
    ("pk", 64),
    ("salt", 64),
])

#: portKeyInit / portKeyUpdate payload: the local port whose key to
#: (re-)establish.  4 bytes (message total 18 B).
KEYCTL_HEADER = HeaderType("keyctl", [
    ("port", 32),
])

#: Alert payload: code + detail word.  8 bytes.
ALERT_HEADER = HeaderType("alert", [
    ("code", 8),
    ("detail", 56),
])

#: Name under which the P4Auth header rides on a packet's header stack.
P4AUTH = "p4auth"
REG_OP = "reg_op"
EAK = "eak"
ADHKD = "adhkd"
KEYCTL = "keyctl"
ALERT = "alert"

#: Key version slots (two-version consistent updates, §VI-C).
KEY_VERSIONS = 2
