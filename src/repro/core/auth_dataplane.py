"""P4Auth's data-plane module: verify-on-ingress, sign-on-egress.

This is the component the paper implements in 400 lines of P4 (§VII).  It
installs two pipeline stages on a :class:`~repro.dataplane.switch.DataplaneSwitch`:

- ``p4auth_verify`` (first stage): authenticates every arriving P4Auth
  message — C-DP register ops and key-exchange messages from the CPU
  port, DP-DP feedback and key-exchange messages from network ports —
  and dispatches the authenticated ones (register ops through the
  ``reg_id_to_name_mapping`` table, exactly as in Fig 15; key-exchange
  messages through the DP side of the KMP state machine).
- ``p4auth_sign`` (last stage): computes digests on every packet leaving
  through a keyed port, pushing a ``DP_FEEDBACK`` P4Auth header onto
  protected in-network messages (e.g., HULA probes) that don't carry one
  yet, and stripping the header when a packet exits the protected domain
  through an unkeyed (edge) port.

All digests run through the switch's hash extern, so they are charged to
hash units (Table II) and to per-packet processing time (Figs 18/19/21).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.constants import (
    ADHKD,
    ALERT,
    EAK,
    KEYCTL,
    P4AUTH,
    P4AUTH_HEADER,
    REG_OP,
    AlertCode,
    HdrType,
    KeyExchType,
    RegOpType,
)
from repro.core.confidentiality import derive_session_keys, encrypt_value
from repro.crypto.stream import xor_crypt
from repro.core.digest import DigestEngine
from repro.core.exchange import AdhkdEndpoint, EakEndpoint
from repro.core.keys import LOCAL_KEY_INDEX, DataplaneKeyStore
from repro.core.messages import (
    build_adhkd_message,
    build_alert,
    build_eak_message,
    build_reg_response,
)
from repro.crypto.kdf import Kdf
from repro.crypto.prng import XorShiftPrng
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import Emit, PipelineContext
from repro.dataplane.switch import DataplaneSwitch
from repro.dataplane.tables import MatchActionTable, MatchKind, TableEntry


#: ``flags`` bit marking an encrypted register-op value (see
#: :mod:`repro.core.confidentiality`).
FLAG_ENCRYPTED = 0x1


@dataclass
class P4AuthConfig:
    """Tunables for the data-plane module."""

    #: Drop unauthenticated register operations arriving on the CPU port
    #: (prevention, not just detection).
    strict_cpu: bool = True
    #: Max alert messages the DP sends to the controller per window
    #: (the §VIII DoS mitigation); None disables rate limiting.
    alert_threshold: Optional[int] = 100
    alert_window_s: float = 1.0
    #: Header names this switch authenticates DP-DP (e.g. {"hula_probe"}).
    protected_headers: Set[str] = field(default_factory=set)
    #: Accept and produce encrypted register-op values (the §XI
    #: confidentiality extension; encrypt-then-MAC with session keys
    #: derived from the local key).
    encrypt_regops: bool = False
    #: Hop-by-hop payload encryption for protected DP-DP feedback
    #: messages (e.g. INT records): each link re-encrypts under its own
    #: port-key-derived session key.  Must be enabled fabric-wide.
    encrypt_feedback: bool = False


@dataclass
class P4AuthStats:
    """Counters the evaluation reads out."""

    regops_served: int = 0
    digest_fail_cdp: int = 0
    digest_fail_dpdp: int = 0
    replays_detected: int = 0
    unknown_register: int = 0
    unauthenticated_dropped: int = 0
    alerts_raised: int = 0
    alerts_suppressed: int = 0
    feedback_verified: int = 0
    feedback_signed: int = 0
    kmp_dpdp_messages: int = 0
    kmp_dpdp_bytes: int = 0


class P4AuthDataplane:
    """The P4Auth program fragment resident in one switch data plane."""

    def __init__(self, switch: DataplaneSwitch, k_seed: int,
                 config: Optional[P4AuthConfig] = None,
                 kdf: Optional[Kdf] = None):
        self.switch = switch
        self.k_seed = k_seed
        self.config = config or P4AuthConfig()
        self.keys = DataplaneKeyStore(switch.registers, switch.num_ports)
        self.digest = DigestEngine(extern=switch.hash)
        self.stats = P4AuthStats()
        self._kdf = kdf or Kdf()
        # The switch's random() extern backs all protocol randomness.
        self._prng = XorShiftPrng(switch.random.random(64))

        registers = switch.registers
        self._kauth = registers.define("p4auth_kauth", 64, 1)
        self._expected_seq = registers.define("p4auth_expected_seq", 32, 1)
        self._dp_seq = registers.define("p4auth_dp_seq", 32, 1)
        size = switch.num_ports + 1
        self._port_seq = registers.define("p4auth_port_seq", 32, size)
        self._pending_r1 = registers.define("p4auth_pending_r1", 64, size)
        self._pending_s1 = registers.define("p4auth_pending_s1", 64, size)
        self._alert_count = registers.define("p4auth_alert_count", 32, 1)
        self._alert_window_start = 0.0

        # Fig 15's reg_id_to_name_mapping table: (regId, opType) -> action.
        self.mapping_table = MatchActionTable(
            "reg_id_to_name_mapping",
            [("regId", MatchKind.EXACT, 32), ("opType", MatchKind.EXACT, 8)],
            max_entries=4096,
        )
        # Explicit miss action: leaves ``_op_ok`` False so an unmapped
        # (regId, opType) still NACKs, but the table satisfies the PISA
        # every-table-has-a-default invariant (verify rule INV001).
        self.mapping_table.register_action("reg_op_miss", lambda: None)
        self.mapping_table.set_default("reg_op_miss")
        switch.add_table(self.mapping_table)

        # Host-CPU memo for derived session-key families (see
        # :meth:`_session_keys`; modeled hash-unit charges unchanged).
        self._session_cache: Dict[int, object] = {}

        # Per-operation scratch (models PHV metadata within one packet).
        self._op_index = 0
        self._op_value = 0
        self._op_result = 0
        self._op_ok = False

        #: Out-of-band instrumentation hooks (measurement only, no wire
        #: traffic): fired when a key install completes.
        self.on_local_key_installed: List[Callable[[int, float], None]] = []
        self.on_port_key_installed: List[Callable[[int, int, float], None]] = []
        #: Fired whenever the DP emits a key-exchange message directly to a
        #: neighbor data plane (port, packet) — used for Table III counting.
        self.on_dpdp_exchange_sent: List[Callable[[int, Packet], None]] = []

        self._installed = False

    @property
    def telemetry(self):
        """The switch's telemetry sink (rebound by the network layer)."""
        return self.switch.telemetry

    # ------------------------------------------------------------------
    # installation & register mapping
    # ------------------------------------------------------------------

    def install(self) -> "P4AuthDataplane":
        """Insert the verify/sign stages into the switch pipeline."""
        if self._installed:
            raise RuntimeError("P4Auth already installed on this switch")
        self.switch.pipeline.insert_stage(0, "p4auth_verify", self._verify_stage)
        self.switch.pipeline.add_stage("p4auth_sign", self._sign_stage)
        self._installed = True
        return self

    def map_register(self, name: str) -> int:
        """Expose a program register to authenticated C-DP read/write.

        Installs the two mapping-table entries (read and write) for the
        register and returns its p4info-style id.  P4Auth's own state
        (``p4auth_*`` registers, including all key material) is
        deliberately unmappable — the controller cannot read keys out of
        the data plane, and neither can an adversary with C-DP access.
        """
        if name.startswith("p4auth_"):
            raise PermissionError(
                f"register {name!r} is P4Auth-internal state and must not "
                "be exposed to C-DP operations"
            )
        register = self.switch.registers.get(name)
        reg_id = self.switch.registers.id_of(name)

        def do_read() -> None:
            self._op_ok = True
            self._op_result = register.read(self._op_index)

        def do_write() -> None:
            self._op_ok = True
            register.write(self._op_index, self._op_value)
            self._op_result = self._op_value

        self.mapping_table.register_action(f"{name}_read", do_read)
        self.mapping_table.register_action(f"{name}_write", do_write)
        self.mapping_table.insert(TableEntry(
            key=(reg_id, int(RegOpType.READ_REQ)), action=f"{name}_read"))
        self.mapping_table.insert(TableEntry(
            key=(reg_id, int(RegOpType.WRITE_REQ)), action=f"{name}_write"))
        return reg_id

    def map_all_registers(self) -> Dict[str, int]:
        """Map every non-P4Auth register; returns name -> id."""
        mapping = {}
        for name in self.switch.registers.names():
            if not name.startswith("p4auth_"):
                mapping[name] = self.map_register(name)
        return mapping

    # ------------------------------------------------------------------
    # verify stage
    # ------------------------------------------------------------------

    def _verify_stage(self, ctx: PipelineContext) -> None:
        packet = ctx.packet
        # Metadata is per-switch PHV state; the previous hop's sign marker
        # must not suppress re-signing here (in-network messages mutate
        # hop by hop, e.g. INT records, HULA utilization).
        packet.metadata.pop("p4auth_signed", None)
        if not packet.has(P4AUTH):
            self._handle_unauthenticated(ctx)
            return
        hdr = packet.get(P4AUTH)
        from_cpu = ctx.ingress_port == DataplaneSwitch.CPU_PORT
        key = self._select_key(hdr, ctx.ingress_port)
        if key is None or key == 0 or not self.digest.verify(key, packet):
            self._on_digest_fail(ctx, hdr, from_cpu)
            return
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter(
                "p4auth_digest_verify_total", switch=self.switch.name,
                result="pass", channel="cdp" if from_cpu else "dpdp",
            ).inc()

        hdr_type = hdr["hdrType"]
        if hdr_type == HdrType.REGISTER_OP:
            if not packet.has(REG_OP):
                ctx.drop("register op without a reg_op payload")
                return
            self._handle_reg_op(ctx, hdr)
            ctx.stop()
        elif hdr_type == HdrType.KEY_EXCHANGE:
            if not self._exchange_payload_ok(packet, hdr["msgType"]):
                ctx.drop("key-exchange message with a malformed payload")
                return
            self._handle_key_exchange(ctx, hdr, from_cpu)
            ctx.stop()
        elif hdr_type == HdrType.DP_FEEDBACK:
            # Authenticated in-network feedback: let the host system's
            # stages process it.
            if (self.config.encrypt_feedback and packet.payload
                    and hdr["flags"] & FLAG_ENCRYPTED):
                self._crypt_feedback_payload(packet, ctx.ingress_port,
                                             hdr, sender_side=False)
                hdr["flags"] &= ~FLAG_ENCRYPTED & 0xFF
            packet.metadata["p4auth_verified"] = True
            self.stats.feedback_verified += 1
        else:
            ctx.drop(f"unexpected hdrType {hdr_type} at data plane")

    def _select_key(self, hdr, ingress_port: int) -> Optional[int]:
        """Which key authenticates this message (None = no key material)."""
        key_ver = hdr["keyVer"]
        if ingress_port != DataplaneSwitch.CPU_PORT:
            if not 1 <= ingress_port <= self.switch.num_ports:
                return None
            return self.keys.port_key(ingress_port, key_ver) or None
        hdr_type = hdr["hdrType"]
        msg_type = hdr["msgType"]
        if hdr_type == HdrType.KEY_EXCHANGE:
            if msg_type == KeyExchType.EAK_SALT1:
                return self.k_seed
            if msg_type in (KeyExchType.ADHKD_MSG1, KeyExchType.ADHKD_MSG2):
                if hdr["flags"] == 0:
                    # Local-key *initialization* (initKeyExch, Fig 14a):
                    # authenticated with K_auth.
                    return self._kauth.read(0) or None
                # Redirected port-key legs: the local key.
                return self.keys.local_key(key_ver) or None
            # updKeyExch and portKey* control messages: the local key.
        return self.keys.local_key(key_ver) or None

    def _handle_unauthenticated(self, ctx: PipelineContext) -> None:
        packet = ctx.packet
        if ctx.ingress_port == DataplaneSwitch.CPU_PORT:
            if self.config.strict_cpu and packet.has(REG_OP):
                self.stats.unauthenticated_dropped += 1
                self._raise_alert(ctx, AlertCode.UNAUTHENTICATED_REG_OP)
                ctx.drop("unauthenticated register operation")
            return
        if (self._carries_protected(packet)
                and self.keys.has_port_key(ctx.ingress_port)):
            # A protected feedback message arrived on a keyed link without
            # a P4Auth header: a MitM stripped or never had the digest.
            self.stats.digest_fail_dpdp += 1
            self._note_verify_fail(ctx, "dpdp", "header_stripped")
            self._raise_alert(ctx, AlertCode.DIGEST_MISMATCH_DPDP,
                              detail=ctx.ingress_port)
            ctx.drop("unauthenticated protected feedback message")

    def _note_verify_fail(self, ctx: PipelineContext, channel: str,
                          cause: str) -> None:
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter(
                "p4auth_digest_verify_total", switch=self.switch.name,
                result="fail", channel=channel,
            ).inc()
            telemetry.tracer.emit("digest.verify_fail",
                                  switch=self.switch.name, channel=channel,
                                  cause=cause, port=ctx.ingress_port)

    def _note_replay(self, ctx: PipelineContext, seq: int,
                     channel: str) -> None:
        self.stats.replays_detected += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter("p4auth_replay_rejected_total",
                                      switch=self.switch.name,
                                      channel=channel).inc()
            telemetry.tracer.emit("replay.reject", switch=self.switch.name,
                                  channel=channel, seq=seq)

    def _on_digest_fail(self, ctx: PipelineContext, hdr, from_cpu: bool) -> None:
        msg_type = hdr["msgType"]
        self._note_verify_fail(ctx, "cdp" if from_cpu else "dpdp",
                               "digest_mismatch")
        if from_cpu:
            self.stats.digest_fail_cdp += 1
            is_request = (
                hdr["hdrType"] == HdrType.REGISTER_OP
                and msg_type in (RegOpType.READ_REQ, RegOpType.WRITE_REQ)
                and ctx.packet.has(REG_OP)
            )
            if is_request:
                # The nAck doubles as the alert; it shares the alert
                # budget so a flood of tampered requests cannot jam the
                # DP -> C channel (§VIII DoS mitigation).
                if self._alert_budget_ok(ctx.now):
                    payload = ctx.packet.get(REG_OP)
                    nack = build_reg_response(
                        ok=False, reg_id=payload["regId"],
                        index=payload["index"], value=0,
                        seq_num=hdr["seqNum"],
                        key_ver=self.keys.active_version(LOCAL_KEY_INDEX),
                    )
                    self._sign_local(nack)
                    ctx.to_controller(nack, reason="digest mismatch")
                    self.stats.alerts_raised += 1
            else:
                self._raise_alert(ctx, AlertCode.DIGEST_MISMATCH_CDP)
        else:
            self.stats.digest_fail_dpdp += 1
            self._raise_alert(ctx, AlertCode.DIGEST_MISMATCH_DPDP,
                              detail=ctx.ingress_port)
        ctx.drop("p4auth digest verification failed")

    # ------------------------------------------------------------------
    # register operations (Fig 8 / Fig 15)
    # ------------------------------------------------------------------

    def _handle_reg_op(self, ctx: PipelineContext, hdr) -> None:
        payload = ctx.packet.get(REG_OP)
        seq = hdr["seqNum"]
        encrypted = bool(hdr["flags"] & FLAG_ENCRYPTED)
        expected = self._expected_seq.read(0)
        if seq < expected:
            # Authenticated but stale: a replayed request (§VIII).
            self._note_replay(ctx, seq, "cdp")
            self._raise_alert(ctx, AlertCode.REPLAY_SUSPECTED, detail=seq)
            self._respond_reg(ctx, ok=False, payload=payload, seq=seq,
                              value=0, encrypted=encrypted,
                              key_ver=hdr["keyVer"])
            return
        self._expected_seq.write(0, (seq + 1) & 0xFFFFFFFF)

        self._op_index = payload["index"]
        self._op_value = payload["value"]
        if encrypted:
            # Encrypt-then-MAC order: the digest already verified over the
            # ciphertext; decrypt only now (costs hash units).
            session = self._session_keys(hdr["keyVer"])
            self._op_value = encrypt_value(session, seq, self._op_value)
            self._charge_kdf()
        self._op_ok = False
        self._op_result = 0
        self.mapping_table.lookup(payload["regId"], hdr["msgType"])
        if not self._op_ok:
            self.stats.unknown_register += 1
            self._raise_alert(ctx, AlertCode.UNKNOWN_REGISTER,
                              detail=payload["regId"])
            self._respond_reg(ctx, ok=False, payload=payload, seq=seq,
                              value=0, encrypted=encrypted,
                              key_ver=hdr["keyVer"])
            return
        self.stats.regops_served += 1
        self._respond_reg(ctx, ok=True, payload=payload, seq=seq,
                          value=self._op_result, encrypted=encrypted,
                          key_ver=hdr["keyVer"])

    def _session_keys(self, key_ver: int):
        """Session-key family for the local key at a given version.

        Memoized by master-key value (a rolled key misses and re-derives).
        This saves host CPU only: callers still charge the KDF to the
        hash extern per packet, because the modeled PISA pipeline runs
        every stage for every packet — batched ingress stays per-packet
        and the wire format is untouched.
        """
        master = self.keys.local_key(key_ver)
        cached = self._session_cache.get(master)
        if cached is None:
            cached = derive_session_keys(master)
            if len(self._session_cache) >= 16:
                self._session_cache.clear()
            self._session_cache[master] = cached
        return cached

    def _respond_reg(self, ctx: PipelineContext, ok: bool, payload, seq: int,
                     value: int, encrypted: bool = False,
                     key_ver: Optional[int] = None) -> None:
        # Respond under the same key version that authenticated the
        # request: during a rollover the controller may not have
        # installed the DP's newest key yet (§VI-C consistent updates).
        if key_ver is None:
            key_ver = self.keys.active_version(LOCAL_KEY_INDEX)
        if encrypted and self.config.encrypt_regops:
            session = self._session_keys(key_ver)
            value = encrypt_value(session, seq, value, response=True)
        response = build_reg_response(
            ok=ok, reg_id=payload["regId"], index=payload["index"],
            value=value, seq_num=seq, key_ver=key_ver,
        )
        if encrypted and self.config.encrypt_regops:
            response.get(P4AUTH)["flags"] = FLAG_ENCRYPTED
        response.get(P4AUTH)["keyVer"] = key_ver
        self.digest.sign(self.keys.local_key(key_ver), response)
        ctx.to_controller(response, reason="reg-op response")

    # ------------------------------------------------------------------
    # key management: the DP side of EAK / ADHKD (Figs 11, 12, 14)
    # ------------------------------------------------------------------

    @staticmethod
    def _exchange_payload_ok(packet: Packet, msg_type: int) -> bool:
        """Structural check: the msgType's required payload is present."""
        if msg_type in (KeyExchType.EAK_SALT1, KeyExchType.EAK_SALT2):
            return packet.has(EAK)
        if msg_type in (KeyExchType.ADHKD_MSG1, KeyExchType.ADHKD_MSG2,
                        KeyExchType.UPD_MSG1, KeyExchType.UPD_MSG2):
            return packet.has(ADHKD)
        if msg_type in (KeyExchType.PORT_KEY_INIT,
                        KeyExchType.PORT_KEY_UPDATE):
            return packet.has(KEYCTL)
        return False

    def _handle_key_exchange(self, ctx: PipelineContext, hdr,
                             from_cpu: bool) -> None:
        msg_type = hdr["msgType"]
        if from_cpu:
            if msg_type == KeyExchType.EAK_SALT1:
                self._eak_respond(ctx, hdr)
            elif msg_type == KeyExchType.ADHKD_MSG1:
                self._adhkd_respond_cpu(ctx, hdr)
            elif msg_type == KeyExchType.UPD_MSG1:
                self._upd_respond_cpu(ctx, hdr)
            elif msg_type == KeyExchType.ADHKD_MSG2:
                self._adhkd_finish_redirected(ctx, hdr)
            elif msg_type == KeyExchType.PORT_KEY_INIT:
                self._port_key_start(ctx, hdr, via_controller=True)
            elif msg_type == KeyExchType.PORT_KEY_UPDATE:
                self._port_key_start(ctx, hdr, via_controller=False)
            else:
                ctx.drop(f"unexpected key-exchange msgType {msg_type} from C")
        else:
            if msg_type == KeyExchType.ADHKD_MSG1:
                self._adhkd_respond_link(ctx, hdr)
            elif msg_type == KeyExchType.ADHKD_MSG2:
                self._adhkd_finish_link(ctx, hdr)
            else:
                ctx.drop(f"unexpected key-exchange msgType {msg_type} on link")

    def _eak_respond(self, ctx: PipelineContext, hdr) -> None:
        salt1 = ctx.packet.get(EAK)["salt"]
        endpoint = EakEndpoint(self.k_seed, self._prng, self._kdf)
        salt2, k_auth = endpoint.respond(salt1)
        self._charge_kdf()
        self._kauth.write(0, k_auth)
        reply = build_eak_message(KeyExchType.EAK_SALT2, salt2, hdr["seqNum"])
        self.digest.sign(self.k_seed, reply)
        ctx.to_controller(reply, reason="EAK salt2")

    def _adhkd_respond_cpu(self, ctx: PipelineContext, hdr) -> None:
        """ADHKD_MSG1 via CPU: local-key exchange, or a redirected
        port-key init leg (flags carries the local port number)."""
        payload = ctx.packet.get(ADHKD)
        context_port = hdr["flags"]
        endpoint = AdhkdEndpoint(self._prng, kdf=self._kdf)
        pk2, salt2, master = endpoint.respond(payload["pk"], payload["salt"])
        self._charge_kdf()
        if context_port == 0:
            # Local-key initialization: the reply is authenticated with
            # K_auth, and the fresh key always (re)occupies version 0 so
            # retried initializations cannot drift the version counters.
            reply = build_adhkd_message(KeyExchType.ADHKD_MSG2, pk2, salt2,
                                        hdr["seqNum"])
            self.digest.sign(self._kauth.read(0), reply)
            ctx.to_controller(reply, reason="ADHKD msg2 (local key)")
            self.keys.install_at(LOCAL_KEY_INDEX, master, 0)
            for hook in self.on_local_key_installed:
                hook(master, ctx.now)
        else:
            reply = build_adhkd_message(KeyExchType.ADHKD_MSG2, pk2, salt2,
                                        hdr["seqNum"])
            reply.get(P4AUTH)["flags"] = context_port
            self._sign_local(reply)
            ctx.to_controller(reply, reason="ADHKD msg2 (port key, redirected)")
            self.keys.install_at(context_port, master, 0)
            self.keys.set_port_direction(context_port, 1)
            for hook in self.on_port_key_installed:
                hook(context_port, master, ctx.now)

    def _upd_respond_cpu(self, ctx: PipelineContext, hdr) -> None:
        """updKeyExch leg 1 (Fig 14b): roll the local key.

        The reply is signed with the *same* key slot that authenticated
        the request, and the new key installs into the *next* slot — both
        derived from the request's keyVer tag, so a retried update after
        a lost reply re-synchronizes instead of drifting.
        """
        payload = ctx.packet.get(ADHKD)
        endpoint = AdhkdEndpoint(self._prng, kdf=self._kdf)
        pk2, salt2, master = endpoint.respond(payload["pk"], payload["salt"])
        self._charge_kdf()
        request_ver = hdr["keyVer"]
        reply = build_adhkd_message(KeyExchType.UPD_MSG2, pk2, salt2,
                                    hdr["seqNum"], key_ver=request_ver)
        self.digest.sign(self.keys.local_key(request_ver), reply)
        ctx.to_controller(reply, reason="updKeyExch msg2 (local key)")
        self.keys.install_at(LOCAL_KEY_INDEX, master, request_ver + 1)
        for hook in self.on_local_key_installed:
            hook(master, ctx.now)

    def _adhkd_finish_redirected(self, ctx: PipelineContext, hdr) -> None:
        """ADHKD_MSG2 via CPU: completes a redirected port-key init we
        started with PORT_KEY_INIT."""
        context_port = hdr["flags"]
        if context_port == 0 or self._pending_r1.read(context_port) == 0:
            self._raise_alert(ctx, AlertCode.KEY_EXCHANGE_TAMPER,
                              detail=context_port)
            ctx.drop("ADHKD msg2 without a pending exchange")
            return
        # Redirected port-key *initialization*: always version 0.
        self._finish_port_exchange(ctx, hdr, context_port, version=0)

    def _adhkd_respond_link(self, ctx: PipelineContext, hdr) -> None:
        """ADHKD_MSG1 over a link: the peer is rolling our shared port key."""
        port = ctx.ingress_port
        seq = hdr["seqNum"]
        if seq <= self._port_seq.read(port):
            self._note_replay(ctx, seq, "dpdp")
            self._raise_alert(ctx, AlertCode.REPLAY_SUSPECTED, detail=seq)
            ctx.drop("replayed DP-DP key exchange message")
            return
        self._port_seq.write(port, seq)
        payload = ctx.packet.get(ADHKD)
        endpoint = AdhkdEndpoint(self._prng, kdf=self._kdf)
        pk2, salt2, master = endpoint.respond(payload["pk"], payload["salt"])
        self._charge_kdf()
        request_ver = hdr["keyVer"]
        reply = build_adhkd_message(KeyExchType.ADHKD_MSG2, pk2, salt2, seq,
                                    key_ver=request_ver)
        self.digest.sign(self.keys.port_key(port, request_ver), reply)
        reply.metadata["p4auth_signed"] = True
        self._count_dpdp(port, reply)
        ctx.emit(port, reply)
        self.keys.install_at(port, master, request_ver + 1)
        self.keys.set_port_direction(port, 1)
        for hook in self.on_port_key_installed:
            hook(port, master, ctx.now)

    def _adhkd_finish_link(self, ctx: PipelineContext, hdr) -> None:
        """ADHKD_MSG2 over a link: completes a direct port-key update."""
        port = ctx.ingress_port
        if self._pending_r1.read(port) == 0:
            self._raise_alert(ctx, AlertCode.KEY_EXCHANGE_TAMPER, detail=port)
            ctx.drop("ADHKD msg2 without a pending exchange")
            return
        # Direct update: the new key installs at (authenticated keyVer + 1).
        self._finish_port_exchange(ctx, hdr, port,
                                   version=hdr["keyVer"] + 1)

    def _finish_port_exchange(self, ctx: PipelineContext, hdr, port: int,
                              version: int = 0) -> None:
        payload = ctx.packet.get(ADHKD)
        endpoint = AdhkdEndpoint(self._prng, kdf=self._kdf)
        endpoint.resume(self._pending_r1.read(port), self._pending_s1.read(port))
        master = endpoint.finish(payload["pk"], payload["salt"])
        self._charge_kdf()
        self._pending_r1.write(port, 0)
        self._pending_s1.write(port, 0)
        self.keys.install_at(port, master, version)
        self.keys.set_port_direction(port, 0)
        for hook in self.on_port_key_installed:
            hook(port, master, ctx.now)

    def _port_key_start(self, ctx: PipelineContext, hdr,
                        via_controller: bool) -> None:
        port = ctx.packet.get(KEYCTL)["port"]
        if not 1 <= port <= self.switch.num_ports:
            self._raise_alert(ctx, AlertCode.KEY_EXCHANGE_TAMPER, detail=port)
            ctx.drop(f"portKey message for invalid port {port}")
            return
        endpoint = AdhkdEndpoint(self._prng, kdf=self._kdf)
        pk1, salt1 = endpoint.start()
        r1, s1 = endpoint.pending_state()
        self._pending_r1.write(port, r1)
        self._pending_s1.write(port, s1)
        seq = self._next_dp_seq()
        msg1 = build_adhkd_message(KeyExchType.ADHKD_MSG1, pk1, salt1, seq)
        if via_controller:
            msg1.get(P4AUTH)["flags"] = port
            self._sign_local(msg1)
            ctx.to_controller(msg1, reason="ADHKD msg1 (port key, redirected)")
        else:
            msg1.get(P4AUTH)["keyVer"] = self.keys.active_version(port)
            self.digest.sign(self.keys.port_key(port), msg1)
            msg1.metadata["p4auth_signed"] = True
            self._count_dpdp(port, msg1)
            ctx.emit(port, msg1)

    # ------------------------------------------------------------------
    # sign stage
    # ------------------------------------------------------------------

    def _sign_stage(self, ctx: PipelineContext) -> None:
        for action in ctx.actions:
            if not isinstance(action, Emit):
                continue
            packet = action.packet
            if packet.metadata.get("p4auth_signed"):
                continue
            keyed = self.keys.has_port_key(action.port)
            if packet.has(P4AUTH):
                if keyed:
                    self._sign_for_port(packet, action.port)
                else:
                    # Leaving the protected domain through an edge port.
                    packet.remove(P4AUTH)
            elif keyed and self._carries_protected(packet):
                auth = P4AUTH_HEADER.instantiate(
                    hdrType=int(HdrType.DP_FEEDBACK), msgType=0,
                    seqNum=self._next_dp_seq(), keyVer=0, flags=0,
                    length=0, digest=0,
                )
                packet.push(P4AUTH, auth)
                self._sign_for_port(packet, action.port)
            packet.metadata["p4auth_signed"] = True

    def _sign_for_port(self, packet: Packet, port: int) -> None:
        hdr = packet.get(P4AUTH)
        hdr["keyVer"] = self.keys.active_version(port)
        if (self.config.encrypt_feedback and packet.payload
                and hdr["hdrType"] == HdrType.DP_FEEDBACK):
            self._crypt_feedback_payload(packet, port, hdr, sender_side=True)
            hdr["flags"] |= FLAG_ENCRYPTED
        self.digest.sign(self.keys.port_key(port), packet)
        self.stats.feedback_signed += 1

    def _crypt_feedback_payload(self, packet: Packet, port: int, hdr,
                                sender_side: bool) -> None:
        """Encrypt/decrypt a feedback payload under this link's session
        key (encrypt-then-MAC order is preserved by the callers).

        The nonce folds in the message sequence number and the sender's
        exchange-direction bit, so the two directions of a link never
        reuse a (key, nonce) pair.
        """
        session = derive_session_keys(
            self.keys.port_key(port, hdr["keyVer"]))
        own_dir = self.keys.port_direction(port)
        sender_dir = own_dir if sender_side else 1 - own_dir
        nonce = ((hdr["seqNum"] << 1) | sender_dir) & ((1 << 64) - 1)
        packet.payload = xor_crypt(session.encryption, nonce, packet.payload)
        self._charge_kdf()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _carries_protected(self, packet: Packet) -> bool:
        return any(packet.has(name) for name in self.config.protected_headers)

    def _sign_local(self, packet: Packet) -> None:
        packet.get(P4AUTH)["keyVer"] = self.keys.active_version(LOCAL_KEY_INDEX)
        self.digest.sign(self.keys.local_key(), packet)

    def _next_dp_seq(self) -> int:
        return self._dp_seq.read_modify_write(0, lambda v: v + 1)

    def _charge_kdf(self) -> None:
        # The KDF's two PRF executions run on hash units; charge them to
        # the extern so the timing model sees the cost (§VI-D).
        self.switch.hash.invocations += 2

    def _alert_budget_ok(self, now: float) -> bool:
        if self.config.alert_threshold is None:
            return True
        if now - self._alert_window_start >= self.config.alert_window_s:
            self._alert_window_start = now
            self._alert_count.write(0, 0)
        count = self._alert_count.read(0)
        if count >= self.config.alert_threshold:
            self.stats.alerts_suppressed += 1
            return False
        self._alert_count.write(0, count + 1)
        return True

    def _raise_alert(self, ctx: PipelineContext, code: AlertCode,
                     detail: int = 0) -> None:
        if not self._alert_budget_ok(ctx.now):
            return
        self.stats.alerts_raised += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter("p4auth_alerts_total",
                                      switch=self.switch.name,
                                      code=code.name).inc()
            telemetry.tracer.emit("alert.raised", switch=self.switch.name,
                                  code=code.name, detail=detail)
        alert = build_alert(code, detail, self._next_dp_seq())
        key = self.keys.local_key() or self._kauth.read(0) or self.k_seed
        alert.get(P4AUTH)["keyVer"] = self.keys.active_version(LOCAL_KEY_INDEX)
        self.digest.sign(key, alert)
        ctx.to_controller(alert, reason=f"alert:{code.name}")

    def _count_dpdp(self, port: int, packet: Packet) -> None:
        self.stats.kmp_dpdp_messages += 1
        self.stats.kmp_dpdp_bytes += packet.size_bytes
        for hook in self.on_dpdp_exchange_sent:
            hook(port, packet)
