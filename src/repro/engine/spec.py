"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes one paper figure/table/scenario as
data: a parameter grid (the axes that vary across trials), scalar
defaults, and a trial function that builds the scenario and returns a
canonical result dict.  The :class:`~repro.engine.runner.Runner` expands
the grid into a deterministic trial list, derives one seed per trial,
and executes trials serially or across worker processes — the spec
itself never knows how it is being run.

Seed derivation
---------------
Every experiment that consumes randomness exposes it through a single
``seed`` parameter (named by :attr:`ExperimentSpec.seed_param`).  With no
base seed, each trial keeps the module's reference seed — the exact
numbers the legacy per-module runners produce (the parity tests pin
this).  With ``base_seed=N`` (CLI ``--seed N``), each trial's seed is
re-derived as a pure function of ``(base_seed, spec name, the trial's
other parameters)`` via :func:`derive_seed`, so

- two trials of one sweep never share a seed by accident,
- a trial's seed never depends on execution order or worker count
  (parallel and serial runs are bit-identical), and
- re-running a sweep with the same base seed reproduces it exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple,
)

from repro.engine.canon import canonical_json, content_hash


@dataclass
class TrialContext:
    """Everything the engine hands a trial function for one execution."""

    #: Fully resolved parameters (grid axes + defaults + sweep overrides).
    params: Dict[str, Any]
    #: The trial's seed (also present in ``params`` for seeded specs).
    seed: int
    #: A live ``Telemetry`` when per-trial trace capture is on, else None.
    telemetry: Any = None
    #: The spec's fault plan for these params (chaos specs), else None.
    fault_plan: Any = None


TrialFn = Callable[[TrialContext], Mapping]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment as data; registered in :mod:`repro.engine.registry`."""

    name: str
    title: str
    #: Where the numbers land in the paper ("Fig 16", "Table I", "chaos").
    source: str
    #: Builds the scenario for one parameter point; returns a JSONable
    #: mapping.  Must be a module-level callable (worker processes look
    #: the spec up by name and call it there).
    trial: TrialFn
    #: Axes that vary across trials: param name -> sequence of values.
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: Scalar parameters shared by every trial (sweepable via overrides).
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Overrides applied by ``--short`` (CI smoke: cheap but real runs).
    short: Mapping[str, Any] = field(default_factory=dict)
    #: Name of the parameter carrying the trial seed, or None for
    #: experiments that are deterministic by construction.
    seed_param: Optional[str] = None
    #: Bumped whenever the trial's result semantics change; part of the
    #: result-cache key, so stale cache entries can never be replayed.
    spec_version: int = 1
    #: Whether the trial function threads ``ctx.telemetry`` through.
    supports_telemetry: bool = False
    #: Optional hook deriving a FaultPlan from (params, seed).
    fault_plan: Optional[Callable[[Mapping[str, Any], int], Any]] = None
    tags: Tuple[str, ...] = ()

    def param_names(self) -> List[str]:
        return sorted(set(self.grid) | set(self.defaults))

    def expand(self, sweep: Optional[Mapping[str, Sequence[Any]]] = None,
               short: bool = False,
               base_seed: Optional[int] = None) -> List["TrialPlan"]:
        """The deterministic trial list for one run.

        ``sweep`` maps parameter names to value lists; a swept parameter
        becomes (or replaces) a grid axis.  Axes are iterated in sorted
        name order, values in the order given, so the trial list — and
        therefore every artifact — is independent of dict insertion
        order and worker scheduling.
        """
        axes: Dict[str, Sequence[Any]] = dict(self.grid)
        scalars: Dict[str, Any] = dict(self.defaults)
        if short:
            for key, value in self.short.items():
                if key in axes:
                    axes[key] = value if isinstance(value, (list, tuple)) \
                        else [value]
                else:
                    scalars[key] = value
        for key, values in (sweep or {}).items():
            if key not in axes and key not in scalars:
                raise KeyError(
                    f"{self.name!r} has no parameter {key!r} "
                    f"(valid: {self.param_names()})")
            scalars.pop(key, None)
            axes[key] = list(values)

        names = sorted(axes)
        plans: List[TrialPlan] = []
        for combo in itertools.product(*(axes[name] for name in names)):
            params = dict(scalars)
            params.update(zip(names, combo))
            seed = self._trial_seed(params, base_seed)
            if self.seed_param is not None:
                params[self.seed_param] = seed
            plans.append(TrialPlan(spec_name=self.name, params=params,
                                   seed=seed, varied=list(names)))
        return plans

    def _trial_seed(self, params: Dict[str, Any],
                    base_seed: Optional[int]) -> int:
        if base_seed is None:
            if self.seed_param is None:
                return 0
            return int(params.get(self.seed_param, 0))
        others = {key: value for key, value in params.items()
                  if key != self.seed_param}
        return derive_seed(base_seed, self.name, others)


@dataclass(frozen=True)
class TrialPlan:
    """One point of the expanded matrix, before execution."""

    spec_name: str
    params: Dict[str, Any]
    seed: int
    #: The axis names that vary across this run (for display/ids).
    varied: List[str]

    @property
    def trial_id(self) -> str:
        """Stable, filesystem-safe identity within one run."""
        if not self.varied:
            return self.spec_name
        parts = [f"{name}={self.params[name]}" for name in self.varied]
        safe = ",".join(parts).replace("/", "_").replace(" ", "")
        return f"{self.spec_name}[{safe}]"

    def cache_key(self, spec: ExperimentSpec) -> str:
        """Content hash identifying this trial's result exactly."""
        return content_hash({
            "spec": self.spec_name,
            "spec_version": spec.spec_version,
            "params": self.params,
            "seed": self.seed,
        })


def derive_seed(base_seed: int, spec_name: str,
                params: Mapping[str, Any]) -> int:
    """A 31-bit seed that is a pure function of its inputs.

    Stays in ``[1, 2**31)`` so every consumer (xorshift PRNGs, switch
    seeds, k_seed mixing) receives a small positive int, like the
    hand-picked reference seeds it replaces.
    """
    digest = content_hash({"base": int(base_seed), "spec": spec_name,
                           "params": params})
    return int(digest[:8], 16) % (2 ** 31 - 1) + 1


def parse_sweep(spec: ExperimentSpec,
                items: Sequence[str]) -> Dict[str, List[Any]]:
    """Parse CLI ``--sweep k=v1,v2`` strings, coercing to the param type.

    The target type comes from the spec's default (or first grid value)
    for that parameter; booleans accept true/false/1/0.
    """
    sweep: Dict[str, List[Any]] = {}
    for item in items:
        if "=" not in item:
            raise ValueError(f"--sweep expects k=v1,v2,...  got {item!r}")
        key, _, raw = item.partition("=")
        key = key.strip()
        if key in spec.defaults:
            template = spec.defaults[key]
        elif key in spec.grid and len(spec.grid[key]):
            template = spec.grid[key][0]
        else:
            raise KeyError(
                f"{spec.name!r} has no parameter {key!r} "
                f"(valid: {spec.param_names()})")
        sweep[key] = [_coerce(value.strip(), template)
                      for value in raw.split(",") if value.strip()]
        if not sweep[key]:
            raise ValueError(f"--sweep {key}= has no values")
    return sweep


def _coerce(text: str, template: Any) -> Any:
    if isinstance(template, bool):
        lowered = text.lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"expected a boolean, got {text!r}")
    if isinstance(template, int):
        return int(text)
    if isinstance(template, float):
        return float(text)
    if template is None or isinstance(template, str):
        return text
    raise ValueError(
        f"cannot sweep parameter of type {type(template).__name__}")


__all__ = [
    "ExperimentSpec",
    "TrialContext",
    "TrialPlan",
    "canonical_json",
    "derive_seed",
    "parse_sweep",
]
