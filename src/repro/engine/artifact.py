"""Canonical ``BENCH_<name>.json`` result artifacts.

One artifact = one experiment run: the expanded trial matrix with every
trial's parameters, seed, and canonical result, plus non-deterministic
run metadata kept strictly apart (so two runs of the same matrix differ
*only* inside ``run_meta`` — the bit-identity tests compare everything
else).  ``analysis/report.py`` renders these back into paper-style
tables, and CI uploads them as build artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.engine.canon import SCHEMA, to_jsonable

#: Keys every artifact must carry, in schema order.
REQUIRED_KEYS = ("schema", "experiment", "spec_version", "source",
                 "title", "base_seed", "trials")
#: Keys every trial record must carry.
TRIAL_KEYS = ("id", "params", "seed", "result")


def build_artifact(spec, trials: List[Dict[str, Any]],
                   base_seed: Optional[int],
                   run_meta: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble the canonical artifact document for one run."""
    return to_jsonable({
        "schema": SCHEMA,
        "experiment": spec.name,
        "spec_version": spec.spec_version,
        "source": spec.source,
        "title": spec.title,
        "base_seed": base_seed,
        "trials": trials,
        "run_meta": run_meta or {},
    })


def artifact_path(name: str, out_dir: str = ".") -> str:
    safe = name.replace("/", "_").replace("-", "_")
    return os.path.join(out_dir, f"BENCH_{safe}.json")


def write_artifact(document: Dict[str, Any], out_dir: str = ".") -> str:
    """Validate and write the artifact; returns its path."""
    validate_artifact(document)
    path = artifact_path(document["experiment"], out_dir)
    os.makedirs(out_dir or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact(path: str) -> Dict[str, Any]:
    with open(path, "r") as handle:
        document = json.load(handle)
    validate_artifact(document)
    return document


def validate_artifact(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid v1 artifact."""
    if not isinstance(document, dict):
        raise ValueError("artifact must be a JSON object")
    missing = [key for key in REQUIRED_KEYS if key not in document]
    if missing:
        raise ValueError(f"artifact missing keys: {missing}")
    if document["schema"] != SCHEMA:
        raise ValueError(f"unsupported artifact schema "
                         f"{document['schema']!r} (want {SCHEMA!r})")
    if not isinstance(document["trials"], list) or not document["trials"]:
        raise ValueError("artifact must contain a non-empty trial list")
    seen = set()
    for trial in document["trials"]:
        absent = [key for key in TRIAL_KEYS if key not in trial]
        if absent:
            raise ValueError(f"trial record missing keys: {absent}")
        if not isinstance(trial["params"], dict):
            raise ValueError("trial params must be an object")
        if not isinstance(trial["result"], dict):
            raise ValueError("trial result must be an object")
        if trial["id"] in seen:
            raise ValueError(f"duplicate trial id {trial['id']!r}")
        seen.add(trial["id"])


__all__ = [
    "artifact_path",
    "build_artifact",
    "load_artifact",
    "validate_artifact",
    "write_artifact",
]
