"""Content-hash result cache for experiment trials.

A trial's cache key (:meth:`~repro.engine.spec.TrialPlan.cache_key`)
hashes the spec name, its ``spec_version``, and every resolved parameter
including the seed — so a hit can only ever replay a result that the
exact same computation would produce.  Entries are one JSON file per
key under the cache directory; the store is safe for concurrent writers
(worker shards) because writes go through a per-process temp file and an
atomic rename.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from repro.engine.canon import canonical_json
from repro.store.atomic import atomic_write_text, sweep_orphan_tmp

DEFAULT_CACHE_DIR = ".bench_cache"


class ResultCache:
    """Directory-backed map from content hash to canonical result JSON."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        self.hits = 0
        self.misses = 0
        #: Corrupt entries deleted on read failure (see :meth:`get`).
        self.evictions = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                result = json.load(handle)
        except ValueError:
            # A corrupt entry (truncated write, disk fault) would otherwise
            # be re-read and re-fail on every future run: evict it so the
            # next ``put`` rebuilds a clean copy.
            self.misses += 1
            self.evictions += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Any) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_text(path, canonical_json(result))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Also sweeps orphaned ``*.tmp`` files a crashed writer may have
        left behind (``put`` cleans up after itself on failure, but a
        SIGKILL between mkstemp and rename cannot).  Orphans do not count
        toward the returned entry total.
        """
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(".json"):
                    os.unlink(os.path.join(dirpath, filename))
                    removed += 1
        sweep_orphan_tmp(self.root)
        return removed


__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]
