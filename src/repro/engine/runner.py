"""Trial-matrix execution: serial or sharded across worker processes.

The :class:`Runner` expands a spec into its deterministic trial list,
executes each trial (optionally under a content-hash result cache and
per-trial telemetry capture), and assembles the canonical artifact.
Because every trial's seed and parameters are fixed *before* execution
(:meth:`ExperimentSpec.expand`), and results are collected by trial
index rather than completion order, ``workers=1`` and ``workers=N``
produce byte-identical ``trials`` sections — parallelism is purely a
wall-clock optimization.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.engine.artifact import build_artifact, write_artifact
from repro.engine.cache import ResultCache
from repro.engine.canon import to_jsonable
from repro.engine.registry import get_spec
from repro.engine.spec import ExperimentSpec, TrialContext, TrialPlan


@dataclass
class TrialRecord:
    """One executed (or cache-replayed) trial."""

    id: str
    params: Dict[str, Any]
    seed: int
    result: Dict[str, Any]

    def as_artifact_entry(self) -> Dict[str, Any]:
        return {"id": self.id, "params": self.params, "seed": self.seed,
                "result": self.result}


@dataclass
class RunResult:
    """Everything one engine run produced."""

    spec: ExperimentSpec
    base_seed: Optional[int]
    trials: List[TrialRecord] = field(default_factory=list)
    run_meta: Dict[str, Any] = field(default_factory=dict)
    artifact_path: Optional[str] = None

    def document(self) -> Dict[str, Any]:
        return build_artifact(
            self.spec, [t.as_artifact_entry() for t in self.trials],
            self.base_seed, self.run_meta)

    def only(self) -> Dict[str, Any]:
        """The single trial's result (errors if the matrix had several)."""
        if len(self.trials) != 1:
            raise ValueError(
                f"expected exactly one trial, have {len(self.trials)}")
        return self.trials[0].result

    def result_for(self, **params) -> Dict[str, Any]:
        """The unique trial whose params include every given item."""
        matches = [t for t in self.trials
                   if all(t.params.get(k) == v for k, v in params.items())]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} trials match {params} "
                           f"in {self.spec.name!r}")
        return matches[0].result

    def results(self) -> List[Dict[str, Any]]:
        return [t.result for t in self.trials]


def execute_trial(spec: ExperimentSpec, plan: TrialPlan,
                  trace_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run one trial in-process and return its canonical result."""
    telemetry = None
    if trace_dir is not None and spec.supports_telemetry:
        from repro.telemetry import Telemetry
        telemetry = Telemetry(enabled=True)
    fault_plan = (spec.fault_plan(plan.params, plan.seed)
                  if spec.fault_plan is not None else None)
    ctx = TrialContext(params=dict(plan.params), seed=plan.seed,
                       telemetry=telemetry, fault_plan=fault_plan)
    result = to_jsonable(spec.trial(ctx))
    if not isinstance(result, dict):
        raise TypeError(f"trial for {spec.name!r} must return a mapping, "
                        f"got {type(result).__name__}")
    if telemetry is not None:
        os.makedirs(trace_dir, exist_ok=True)
        safe = plan.trial_id.replace("[", ".").replace("]", "")
        path = os.path.join(trace_dir, f"{safe}.jsonl")
        telemetry.tracer.dump(path)
    return result


def _worker_job(job) -> Dict[str, Any]:
    """Top-level pool target: look the spec up in this process and run."""
    spec_name, plan, trace_dir = job
    return execute_trial(get_spec(spec_name), plan, trace_dir)


class Runner:
    """Expands, shards, caches, and records experiment runs."""

    def __init__(self, workers: int = 1,
                 cache: Union[ResultCache, None, bool] = None,
                 out_dir: Optional[str] = None,
                 trace_dir: Optional[str] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        if cache is True:
            cache = ResultCache()
        self.cache = cache or None
        self.out_dir = out_dir
        self.trace_dir = trace_dir

    def run(self, spec_or_name: Union[str, ExperimentSpec],
            sweep: Optional[Dict[str, Sequence[Any]]] = None,
            base_seed: Optional[int] = None,
            short: bool = False) -> RunResult:
        spec = (get_spec(spec_or_name) if isinstance(spec_or_name, str)
                else spec_or_name)
        plans = spec.expand(sweep=sweep, short=short, base_seed=base_seed)
        started = time.perf_counter()

        results: List[Optional[Dict[str, Any]]] = [None] * len(plans)
        pending: List[int] = []
        cache_hits = 0
        for index, plan in enumerate(plans):
            if self.cache is not None:
                hit = self.cache.get(plan.cache_key(spec))
                if hit is not None:
                    results[index] = hit
                    cache_hits += 1
                    continue
            pending.append(index)

        executed = len(pending)
        if pending:
            if self.workers == 1 or len(pending) == 1:
                for index in pending:
                    results[index] = execute_trial(spec, plans[index],
                                                   self.trace_dir)
            else:
                results_in_order = self._run_pool(
                    spec, [plans[index] for index in pending])
                for index, result in zip(pending, results_in_order):
                    results[index] = result
            if self.cache is not None:
                for index in pending:
                    self.cache.put(plans[index].cache_key(spec),
                                   results[index])

        run = RunResult(spec=spec, base_seed=base_seed)
        for plan, result in zip(plans, results):
            run.trials.append(TrialRecord(
                id=plan.trial_id, params=to_jsonable(plan.params),
                seed=plan.seed, result=result))
        run.run_meta = {
            "workers": self.workers,
            "trials": len(plans),
            "executed": executed,
            "cache_hits": cache_hits,
            "elapsed_s": round(time.perf_counter() - started, 6),
            "short": short,
        }
        if self.out_dir is not None:
            run.artifact_path = write_artifact(run.document(), self.out_dir)
        return run

    def _run_pool(self, spec: ExperimentSpec,
                  plans: List[TrialPlan]) -> List[Dict[str, Any]]:
        # fork shares the in-process registry (including test-registered
        # specs); under spawn the worker re-imports the catalog instead.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        jobs = [(spec.name, plan, self.trace_dir) for plan in plans]
        workers = min(self.workers, len(jobs))
        with ctx.Pool(processes=workers) as pool:
            # map (not imap_unordered): results come back in job order,
            # so sharding cannot perturb the artifact.
            return pool.map(_worker_job, jobs)


def assign_regions(region_ids: Sequence[str],
                   workers: int) -> Dict[str, List[str]]:
    """Region -> worker ownership via the bounded-load consistent ring.

    The same :class:`~repro.service.shardmap.ShardMap` that shards the
    service fleet assigns whole regions to engine workers, so adding a
    worker re-homes few regions and no worker owns more than its
    bounded-load share.  Pure function of ``(region_ids, workers)``.

    Unlike switch sharding (many items per shard, where 1.15x slack
    smooths the ring), regions are few and heavy: the load factor is
    pinned to 1.0 so the cap equals the fair share and no worker idles
    while another owns two regions — the wall-clock speedup of the
    region phase is set by the most loaded worker.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    # Imported here, not at module level: repro.service pulls in the
    # daemon (and through it the runtime stacks), which import the
    # engine registry — a top-level import would close that cycle.
    from repro.service.shardmap import ShardMap
    ring = ShardMap([f"worker-{index}" for index in range(workers)])
    return ring.assign(sorted(region_ids), load_factor=1.0)


def _region_group_job(job) -> List[Any]:
    """Pool target: run one worker's whole region group in-process."""
    task, region_ids = job
    return [task(region_id) for region_id in region_ids]


def run_region_tasks(task, region_ids: Sequence[str],
                     workers: int = 1) -> Dict[str, Any]:
    """Run ``task(region_id)`` for every region, sharded across workers.

    Each worker owns *whole* regions (never half a region), results come
    back keyed by region id in sorted order, and the returned mapping is
    byte-identical for any worker count — parallelism is purely a
    wall-clock optimization, exactly like the trial runner.

    Nested inside a daemonic pool worker (an engine trial already running
    under ``workers > 1``) multiprocessing cannot fork again; the call
    transparently degrades to inline execution with identical results.
    """
    ordered = sorted(region_ids)
    if len(set(ordered)) != len(ordered):
        raise ValueError("duplicate region ids")
    inline = (workers <= 1 or len(ordered) <= 1
              or multiprocessing.current_process().daemon)
    if inline:
        return {region_id: task(region_id) for region_id in ordered}
    assignment = assign_regions(ordered, workers)
    groups = [group for _worker, group in sorted(assignment.items())
              if group]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=len(groups)) as pool:
        outputs = pool.map(_region_group_job,
                           [(task, group) for group in groups])
    merged: Dict[str, Any] = {}
    for group, results in zip(groups, outputs):
        merged.update(zip(group, results))
    return {region_id: merged[region_id] for region_id in ordered}


def run_experiment(name: str, sweep: Optional[Dict[str, Sequence]] = None,
                   workers: int = 1, base_seed: Optional[int] = None,
                   short: bool = False,
                   cache: Union[ResultCache, None, bool] = None,
                   out_dir: Optional[str] = None,
                   trace_dir: Optional[str] = None) -> RunResult:
    """One-call convenience wrapper used by the CLI and benchmarks."""
    runner = Runner(workers=workers, cache=cache, out_dir=out_dir,
                    trace_dir=trace_dir)
    return runner.run(name, sweep=sweep, base_seed=base_seed, short=short)


__all__ = [
    "RunResult",
    "Runner",
    "TrialRecord",
    "assign_regions",
    "execute_trial",
    "run_experiment",
    "run_region_tasks",
]
