"""The single registry every experiment spec lives in.

Specs register themselves at module import (``register(SPEC)`` at the
bottom of each experiment module); :func:`load_catalog` imports every
spec-bearing module so callers — the CLI, the report generator, worker
processes — see the full catalog no matter which entry point they came
through.  Registration is idempotent by name, so re-imports (pytest,
spawn-based multiprocessing) are harmless.
"""

from __future__ import annotations

import importlib
from typing import Dict, List

from repro.engine.spec import ExperimentSpec

_REGISTRY: Dict[str, ExperimentSpec] = {}

#: Every module that registers specs on import.  New experiments add
#: themselves here and nowhere else.
CATALOG_MODULES = (
    "repro.experiments.fig16_routescout",
    "repro.experiments.fig17_hula",
    "repro.experiments.fig20_kmp",
    "repro.experiments.fig21_multihop",
    "repro.experiments.table1_impact",
    "repro.experiments.table2_resources",
    "repro.experiments.table3_scalability",
    "repro.experiments.attack2_aggregation",
    "repro.experiments.cdp_batch",
    "repro.experiments.cdp_service_load",
    "repro.experiments.digest_vector",
    "repro.experiments.fct_inflation",
    "repro.experiments.fleet_scale",
    "repro.experiments.int_manipulation",
    "repro.experiments.persona_matrix",
    "repro.experiments.store_recovery",
    "repro.runtime.comparison",
    "repro.faults.scenarios",
)

_catalog_loaded = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add (or idempotently replace) a spec; returns it for reuse."""
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a spec (test helper)."""
    _REGISTRY.pop(name, None)


def load_catalog() -> None:
    """Import every catalog module exactly once per process."""
    global _catalog_loaded
    if _catalog_loaded:
        return
    for module in CATALOG_MODULES:
        importlib.import_module(module)
    _catalog_loaded = True


def get_spec(name: str) -> ExperimentSpec:
    """Look up a spec, loading the catalog on first miss."""
    if name not in _REGISTRY:
        load_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r} "
                       f"(have: {spec_names()})") from None


def all_specs() -> List[ExperimentSpec]:
    load_catalog()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def spec_names() -> List[str]:
    load_catalog()
    return sorted(_REGISTRY)


__all__ = [
    "CATALOG_MODULES",
    "all_specs",
    "get_spec",
    "load_catalog",
    "register",
    "spec_names",
    "unregister",
]
