"""The declarative experiment engine.

Every paper figure/table and chaos scenario is described once as an
:class:`~repro.engine.spec.ExperimentSpec` (parameter grid, per-trial
seed derivation, trial function) registered in a single catalog
(:mod:`repro.engine.registry`).  The :class:`~repro.engine.runner.Runner`
expands a spec into a deterministic trial matrix and executes it —
serially or sharded across worker processes — under an optional
content-hash result cache, emitting one canonical, schema-versioned
``BENCH_<name>.json`` artifact per run (:mod:`repro.engine.artifact`).

Entry points: ``python -m repro run <name> [--sweep k=v1,v2] [--workers
N]`` on the command line, :func:`~repro.engine.runner.run_experiment`
programmatically.  Parallel and serial runs of the same matrix are
bit-identical outside ``run_meta`` (see DESIGN.md "Experiment engine").
"""

from repro.engine.canon import (
    SCHEMA,
    canonical_json,
    content_hash,
    to_jsonable,
)
from repro.engine.spec import (
    ExperimentSpec,
    TrialContext,
    TrialPlan,
    derive_seed,
    parse_sweep,
)
from repro.engine.registry import (
    CATALOG_MODULES,
    all_specs,
    get_spec,
    load_catalog,
    register,
    spec_names,
    unregister,
)
from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.engine.artifact import (
    artifact_path,
    build_artifact,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from repro.engine.runner import (
    RunResult,
    Runner,
    TrialRecord,
    execute_trial,
    run_experiment,
)

__all__ = [
    "CATALOG_MODULES",
    "DEFAULT_CACHE_DIR",
    "ExperimentSpec",
    "ResultCache",
    "RunResult",
    "Runner",
    "SCHEMA",
    "TrialContext",
    "TrialPlan",
    "TrialRecord",
    "all_specs",
    "artifact_path",
    "build_artifact",
    "canonical_json",
    "content_hash",
    "derive_seed",
    "execute_trial",
    "get_spec",
    "load_artifact",
    "load_catalog",
    "parse_sweep",
    "register",
    "run_experiment",
    "spec_names",
    "to_jsonable",
    "unregister",
    "validate_artifact",
    "write_artifact",
]
