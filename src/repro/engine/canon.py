"""Canonical JSON: the common currency of the experiment engine.

Every trial result, cache key, and ``BENCH_*.json`` artifact flows
through :func:`to_jsonable` and :func:`canonical_json`, so that

- serial and parallel runs of the same trial matrix are *bit-identical*
  (key order, float formatting, and container types are all pinned), and
- content hashes (:func:`content_hash`) are stable across processes and
  Python versions in use here.

The conversion is deliberately strict: anything that is not obviously
representable (an open socket, a simulator...) raises ``TypeError``
instead of being repr()-stringified, because a lossy cache key is worse
than no cache at all.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any

#: Schema tag stamped into artifacts and mixed into every cache key.
SCHEMA = "repro-bench/1"


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into canonical JSON-ready data.

    Dataclasses become field dicts, mappings get string keys, tuples and
    sets become (sorted, for sets) lists, and non-finite floats become
    the strings ``"nan"``/``"inf"``/``"-inf"`` (JSON has no spelling for
    them, and ``json.dumps`` would otherwise emit non-standard tokens
    that ``json.loads`` accepts but other tooling rejects).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {_key(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(v) for v in value)
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} value {value!r}; "
        "trial results must be JSON-representable")


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, bool):
        return "true" if key else "false"
    if isinstance(key, (int, float)):
        return str(key)
    if isinstance(key, tuple):
        return "/".join(_key(part) for part in key)
    raise TypeError(f"cannot canonicalize mapping key {key!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace variance."""
    return json.dumps(to_jsonable(value), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def content_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("ascii")).hexdigest()
