"""Controller crash/restore fault actions (the recovery chaos surface).

The existing :class:`~repro.faults.injector.FaultInjector` crashes
*switches*; this module crashes the **controller** — the failure mode
``repro.store`` exists for.  :class:`ControllerKillSwitch` models
SIGKILL of the controller process at a precise, durability-relevant
instant:

- the journal is truncated to its last fsynced byte
  (:meth:`~repro.store.journal.Journal.simulate_crash`) — whatever the
  fsync policy had not yet made durable is gone, exactly as on a real
  host;
- the recorder is detached (a dead process journals nothing more);
- the controller is halted (timers cancelled, in-flight table dropped)
  and unbound from the network, so late data-plane responses drop with
  ``DROP_NO_CONTROLLER`` instead of reaching a ghost.

Requests whose departure was already scheduled still reach their
switches — the packet had been handed to the NIC — which is the
adversarially *hard* case for recovery: the data plane's
``expected_seq`` advances past numbers the dead controller never heard
acknowledged, and the restarted controller must agree with that without
tripping any defense.

Kill triggers: :meth:`arm_on_record` fires the kill synchronously on
the Nth journal append of a given record type (the crash-point matrix
test walks every type in :data:`~repro.store.journal.RECORD_TYPES`);
:meth:`arm_at` fires at a virtual-time delay mid-workload.
"""

from __future__ import annotations

from typing import Optional

from repro.store.journal import RECORD_TYPES
from repro.store.recorder import StateRecorder


class ControllerKillSwitch:
    """Kill the live controller at an armed trigger point."""

    def __init__(self, network, recorder: StateRecorder):
        self.network = network
        self.recorder = recorder
        self.kills = 0
        #: Virtual time of the (last) kill, None if never fired.
        self.killed_at: Optional[float] = None
        #: The journal record whose append pulled the trigger.
        self.kill_record = None
        self._hook = None
        self._countdown = 0

    # -- triggers ----------------------------------------------------------

    def arm_on_record(self, rec_type: str, occurrence: int = 1) -> None:
        """Kill when the ``occurrence``-th record of ``rec_type`` is
        appended (synchronously: the record itself is already on disk —
        or not, under lazy fsync — when the process dies)."""
        if rec_type not in RECORD_TYPES:
            raise ValueError(f"unknown record type {rec_type!r}")
        if self._hook is not None:
            raise RuntimeError("kill switch is already armed")
        self._countdown = occurrence

        def on_append(record) -> None:
            if record.type != rec_type:
                return
            self._countdown -= 1
            if self._countdown <= 0:
                self.kill_record = record
                self.kill()

        self._hook = on_append
        self.recorder.journal.on_append.append(on_append)

    def arm_at(self, delay_s: float) -> None:
        """Kill after ``delay_s`` of virtual time (mid-workload crash)."""
        controller = self.network.controller
        controller.sim.schedule(delay_s, self.kill)

    def disarm(self) -> None:
        if self._hook is not None:
            try:
                self.recorder.journal.on_append.remove(self._hook)
            except ValueError:
                pass
            self._hook = None

    # -- the kill ----------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL now.  Idempotent; safe to call with no controller."""
        controller = self.network.controller
        if controller is None:
            return
        self.disarm()
        self.recorder.journal.simulate_crash()
        self.recorder.detach()
        controller.halt()
        self.kills += 1
        self.killed_at = controller.sim.now
        telemetry = getattr(self.network, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            telemetry.metrics.counter("fault_controller_kills_total").inc()
            telemetry.tracer.emit(
                "fault.controller_kill",
                at=self.killed_at,
                record=(self.kill_record.type
                        if self.kill_record is not None else None))


__all__ = ["ControllerKillSwitch"]
