"""Declarative fault plans.

A :class:`FaultPlan` is a pure description — which faults, where, when,
and with what intensity — that :class:`~repro.faults.injector.FaultInjector`
turns into scheduled events and delivery shaping.  Keeping the plan
declarative means a chaos run is fully specified by (plan, seed,
workload), which is what makes two runs byte-comparable.

All times in a plan are **absolute virtual times** (seconds since the
simulation epoch), matching the workload schedules in
``repro.experiments``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Link-fault kinds the injector knows how to apply.
LINK_FAULT_KINDS = ("drop", "corrupt", "duplicate", "reorder", "jitter")

#: Valid ``direction`` filters per fault site.
_LINK_DIRECTIONS = (None, "a->b", "b->a")
_CHANNEL_DIRECTIONS = (None, "c->dp", "dp->c")


@dataclass
class LinkFault:
    """One fault process on data-plane links.

    Matches links by node-name pair (``"*"`` wildcards a side) and an
    optional direction; fires per matching packet either probabilistically
    (``probability``) or deterministically (``every_nth``: the Nth, 2Nth,
    ... matching packet).  Active only inside [``start_s``, ``end_s``).
    """

    kind: str
    node_a: str = "*"
    node_b: str = "*"
    direction: Optional[str] = None
    probability: float = 0.0
    every_nth: Optional[int] = None
    start_s: float = 0.0
    end_s: Optional[float] = None
    #: Magnitude knob: reorder hold-back, duplicate offset, or max jitter.
    delay_s: float = 1e-3

    def validate(self) -> None:
        if self.kind not in LINK_FAULT_KINDS:
            raise ValueError(f"unknown link fault kind {self.kind!r} "
                             f"(expected one of {LINK_FAULT_KINDS})")
        if self.direction not in _LINK_DIRECTIONS:
            raise ValueError(f"bad direction {self.direction!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.every_nth is not None and self.every_nth < 1:
            raise ValueError("every_nth must be >= 1")
        if self.probability == 0.0 and self.every_nth is None:
            raise ValueError(f"{self.kind} fault has no trigger: set "
                             "probability or every_nth")
        if self.probability > 0.0 and self.every_nth is not None:
            raise ValueError("choose one trigger: probability or every_nth")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ValueError("end_s must be after start_s")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def active_at(self, now: float) -> bool:
        return now >= self.start_s and (self.end_s is None or now < self.end_s)


@dataclass
class NodeFault:
    """A switch crash (and optional restart).

    While crashed the node eats every arriving packet (``node_down`` drop
    reason).  ``wipe_registers`` models volatile ASIC state: every
    register — including the P4Auth key store, but *not* ``K_seed``,
    which is baked into the P4 binary — is zeroed at crash time, so a
    restarted switch must be re-keyed before authenticated operations
    succeed again.
    """

    switch: str
    crash_at_s: float
    restart_at_s: Optional[float] = None
    wipe_registers: bool = True

    def validate(self) -> None:
        if self.crash_at_s < 0:
            raise ValueError("crash_at_s must be >= 0")
        if self.restart_at_s is not None and self.restart_at_s <= self.crash_at_s:
            raise ValueError("restart_at_s must be after crash_at_s")


@dataclass
class ChannelBlackout:
    """A window during which a switch's control channel delivers nothing.

    Models a controller-switch management-network partition; KMP and
    register ops issued into the window are lost (and, with bounded
    retries enabled, eventually abandoned).
    """

    switch: str
    start_s: float
    end_s: float
    direction: Optional[str] = None

    def validate(self) -> None:
        if self.direction not in _CHANNEL_DIRECTIONS:
            raise ValueError(f"bad channel direction {self.direction!r}")
        if self.end_s <= self.start_s:
            raise ValueError("end_s must be after start_s")

    def active_at(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass
class ClockSkewFault:
    """Impose a fixed clock offset on a switch from ``at_s`` onward.

    The skewed node processes packets with ``now + skew_s`` as its local
    time — a KMP peer with a drifting oscillator, exercising any
    time-window logic under disagreeing clocks.
    """

    switch: str
    skew_s: float
    at_s: float = 0.0

    def validate(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")


@dataclass
class FaultPlan:
    """A complete, seeded fault + adversary schedule for one chaos run.

    ``personas`` carries attacker persona specs
    (:class:`~repro.attacks.personas.PersonaSpec`) alongside the
    environmental faults: both are pure data, and a run is fully
    specified by (plan, seed, workload).  The
    :class:`~repro.faults.injector.FaultInjector` arms environmental
    faults; the experiment/scenario runner arms personas, since only it
    knows the world (target registers, feedback links) they act on.
    """

    seed: int = 0xFA017
    link_faults: List[LinkFault] = field(default_factory=list)
    node_faults: List[NodeFault] = field(default_factory=list)
    blackouts: List[ChannelBlackout] = field(default_factory=list)
    clock_skews: List[ClockSkewFault] = field(default_factory=list)
    personas: List[object] = field(default_factory=list)

    def validate(self) -> None:
        for fault in (self.link_faults + self.node_faults
                      + self.blackouts + self.clock_skews + self.personas):
            fault.validate()

    def fault_count(self) -> int:
        return (len(self.link_faults) + len(self.node_faults)
                + len(self.blackouts) + len(self.clock_skews)
                + len(self.personas))
