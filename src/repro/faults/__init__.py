"""Deterministic fault injection (chaos layer) for the P4Auth reproduction.

Three pieces, composing with the simulator/network rather than forking
them:

- :mod:`repro.faults.plan` — :class:`FaultPlan`, a declarative, seeded
  schedule of link faults (drop/corrupt/duplicate/reorder/jitter), node
  faults (crash/restart with register wipe), control-channel blackouts,
  and clock skew;
- :mod:`repro.faults.injector` — :class:`FaultInjector`, which arms a
  plan against a live :class:`~repro.net.network.Network` (delivery
  shaper + scheduled events + channel taps) and tallies every injection
  through telemetry;
- :mod:`repro.faults.controller` — :class:`ControllerKillSwitch`, the
  controller-process SIGKILL action (crash at a chosen journal record
  or virtual time) driving the ``controller_crash_recovery`` experiment;
- :mod:`repro.faults.scenarios` — :class:`ChaosScenario` runners that
  replay Fig 17/20-style workloads under a plan and assert the paper's
  invariants still hold (``python -m repro chaos``).

Determinism contract: all randomness flows from ``FaultPlan.seed``
through per-fault forked PRNGs, so a chaos run — including its telemetry
JSONL trace — is byte-identical across runs with the same seed.
"""

from repro.faults.plan import (
    ChannelBlackout,
    ClockSkewFault,
    FaultPlan,
    LinkFault,
    LINK_FAULT_KINDS,
    NodeFault,
)
from repro.faults.controller import ControllerKillSwitch
from repro.faults.injector import FaultInjector, InjectorStats
from repro.faults.scenarios import (
    ChaosReport,
    ChaosScenario,
    InvariantResult,
    SCENARIOS,
    SMOKE_SCENARIOS,
    run_scenario,
)

__all__ = [
    "ChannelBlackout",
    "ChaosReport",
    "ChaosScenario",
    "ClockSkewFault",
    "ControllerKillSwitch",
    "FaultInjector",
    "FaultPlan",
    "InjectorStats",
    "InvariantResult",
    "LINK_FAULT_KINDS",
    "LinkFault",
    "NodeFault",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "run_scenario",
]
