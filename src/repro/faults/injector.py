"""The fault injector: arms a :class:`FaultPlan` against a live network.

Link faults ride the network's delivery-shaper hook (one packet in, a
list of ``(packet, delay)`` deliveries out), so drop/duplicate/reorder
faults compose with — and never fork — the normal transmit path.  Node
faults and blackouts are scheduled simulator events and control-channel
taps.  Every random decision draws from a per-fault PRNG forked from the
plan seed in declaration order, which keeps a chaos run's full event
sequence (and therefore its telemetry trace) byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.prng import XorShiftPrng
from repro.dataplane.packet import Packet
from repro.faults.plan import (
    ChannelBlackout,
    FaultPlan,
    LinkFault,
    NodeFault,
)
from repro.net.links import ControlChannel, Link
from repro.net.network import Network, SwitchNode


@dataclass
class InjectorStats:
    """Tally of injections, by fault kind."""

    injections: Dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> int:
        return self.injections.get(kind, 0)

    def total(self) -> int:
        return sum(self.injections.values())


class _LinkFaultState:
    """One armed link fault: its PRNG stream and nth-packet counter."""

    __slots__ = ("fault", "prng", "matched")

    def __init__(self, fault: LinkFault, prng: XorShiftPrng):
        self.fault = fault
        self.prng = prng
        self.matched = 0

    def fires(self) -> bool:
        self.matched += 1
        if self.fault.every_nth is not None:
            return self.matched % self.fault.every_nth == 0
        return self.prng.uniform() < self.fault.probability


class FaultInjector:
    """Arms/disarms a validated :class:`FaultPlan` on a :class:`Network`."""

    def __init__(self, network: Network, plan: FaultPlan):
        plan.validate()
        self.network = network
        self.sim = network.sim
        self.telemetry = network.telemetry
        self.plan = plan
        self.stats = InjectorStats()
        self.armed = False
        #: Called with the switch name after a crashed node restarts —
        #: chaos scenarios hook re-keying here (a restarted switch has a
        #: wiped key store and must go through KMP again).
        self.on_node_restart: List[Callable[[str], None]] = []
        self._link_states: List[_LinkFaultState] = []
        self._blackout_taps: List[Tuple[ControlChannel, Callable]] = []
        self._crash_handles: List[object] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Install the plan: shaper, blackout taps, scheduled node faults."""
        if self.armed:
            raise RuntimeError("injector is already armed")
        if self.plan.link_faults and self.network.delivery_shaper is not None:
            raise RuntimeError("network already has a delivery shaper")
        self.armed = True
        base_prng = XorShiftPrng(self.plan.seed)
        self._link_states = [
            _LinkFaultState(fault, base_prng.fork())
            for fault in self.plan.link_faults
        ]
        if self._link_states:
            self.network.delivery_shaper = self._shape
        for blackout in self.plan.blackouts:
            channel = self.network.control_channels[blackout.switch]
            tap = self._make_blackout_tap(blackout, channel)
            channel.add_tap(tap)
            self._blackout_taps.append((channel, tap))
        for fault in self.plan.node_faults:
            node = self._switch_node(fault.switch)
            handle = self.sim.schedule_cancellable(
                max(0.0, fault.crash_at_s - self.sim.now),
                self._crash, fault, node)
            self._crash_handles.append(handle)
            if fault.restart_at_s is not None:
                self.sim.schedule(max(0.0, fault.restart_at_s - self.sim.now),
                                  self._restart, fault, node)
        for skew in self.plan.clock_skews:
            node = self._switch_node(skew.switch)
            self.sim.schedule(max(0.0, skew.at_s - self.sim.now),
                              self._apply_skew, skew, node)
        if self.telemetry.enabled:
            self.telemetry.tracer.emit("fault.armed",
                                       faults=self.plan.fault_count(),
                                       seed=self.plan.seed)
        return self

    def disarm(self) -> None:
        """Withdraw link faults and blackouts (scheduled restarts still
        fire, so a crashed node is not stranded down)."""
        if not self.armed:
            return
        self.armed = False
        if self._link_states:
            self.network.delivery_shaper = None
        self._link_states = []
        for channel, tap in self._blackout_taps:
            channel.remove_tap(tap)
        self._blackout_taps = []
        for handle in self._crash_handles:
            handle.cancel()
        self._crash_handles = []
        if self.telemetry.enabled:
            self.telemetry.tracer.emit("fault.disarmed",
                                       injections=self.stats.total())

    # ------------------------------------------------------------------
    # link faults (delivery shaper)
    # ------------------------------------------------------------------

    def _shape(self, link: Link, direction: str, packet: Packet,
               delay: float) -> List[Tuple[Packet, float]]:
        deliveries: List[Tuple[Packet, float]] = [(packet, delay)]
        now = self.sim.now
        for state in self._link_states:
            fault = state.fault
            if not fault.active_at(now):
                continue
            if fault.direction is not None and fault.direction != direction:
                continue
            if not link.joins(fault.node_a, fault.node_b):
                continue
            if not state.fires():
                continue
            self._record(fault.kind, link.label, direction)
            if fault.kind == "drop":
                return []
            if fault.kind == "corrupt":
                self._corrupt(packet, state.prng)
            elif fault.kind == "duplicate":
                deliveries.append((packet.copy(), delay + fault.delay_s))
            elif fault.kind == "reorder":
                # Hold this packet back so later traffic overtakes it.
                deliveries = [(p, d + fault.delay_s) for p, d in deliveries]
            elif fault.kind == "jitter":
                extra = fault.delay_s * state.prng.uniform()
                deliveries = [(p, d + extra) for p, d in deliveries]
        return deliveries

    @staticmethod
    def _corrupt(packet: Packet, prng: XorShiftPrng) -> None:
        """Flip random bits in one random field of one random header."""
        names = packet.header_names()
        if not names:
            return
        header = packet.get(names[prng.next_bits(16) % len(names)])
        fields = header.header_type.fields
        fname, bits = fields[prng.next_bits(16) % len(fields)]
        mask = prng.next_bits(bits) or 1
        header[fname] = header[fname] ^ mask

    # ------------------------------------------------------------------
    # channel blackouts
    # ------------------------------------------------------------------

    def _make_blackout_tap(self, blackout: ChannelBlackout,
                           channel: ControlChannel):
        def tap(packet: Packet, direction: str) -> Optional[Packet]:
            if blackout.direction is not None and direction != blackout.direction:
                return packet
            if not blackout.active_at(self.sim.now):
                return packet
            self._record("blackout", channel.label, direction)
            return None
        return tap

    # ------------------------------------------------------------------
    # node faults
    # ------------------------------------------------------------------

    def _switch_node(self, name: str) -> SwitchNode:
        node = self.network.nodes[name]
        if not isinstance(node, SwitchNode):
            raise TypeError(f"node {name!r} is not a switch")
        return node

    def _crash(self, fault: NodeFault, node: SwitchNode) -> None:
        node.up = False
        if fault.wipe_registers:
            registers = node.switch.registers
            for name in registers.names():
                registers.get(name).clear()
        self._record("crash", fault.switch)
        if self.telemetry.enabled:
            self.telemetry.tracer.emit("fault.node_crash",
                                       switch=fault.switch,
                                       wiped=fault.wipe_registers)

    def _restart(self, fault: NodeFault, node: SwitchNode) -> None:
        node.up = True
        self._record("restart", fault.switch)
        if self.telemetry.enabled:
            self.telemetry.tracer.emit("fault.node_restart",
                                       switch=fault.switch)
        for hook in list(self.on_node_restart):
            hook(fault.switch)

    def _apply_skew(self, skew, node: SwitchNode) -> None:
        node.clock_skew_s = skew.skew_s
        self._record("clock_skew", skew.switch)
        if self.telemetry.enabled:
            self.telemetry.tracer.emit("fault.clock_skew",
                                       switch=skew.switch,
                                       skew_s=skew.skew_s)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _record(self, kind: str, site: str, direction: str = "") -> None:
        stats = self.stats.injections
        stats[kind] = stats.get(kind, 0) + 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("fault_injections_total",
                                           kind=kind).inc()
            self.telemetry.tracer.emit("fault.injected", kind=kind,
                                       site=site, direction=direction)
