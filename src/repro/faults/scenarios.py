"""Chaos scenarios: seeded workloads run under a fault plan, with
invariants checked at the end.

Each :class:`ChaosScenario` builds a deployment, arms a
:class:`~repro.faults.injector.FaultInjector`, drives a workload, and
returns a :class:`ChaosReport` whose invariants pin the behaviour the
paper promises even under fault:

- ``kmp-blackout`` — KMP operations issued into a controller-channel
  blackout are *abandoned* (bounded retries, not a silent hang) and the
  deployment re-converges once the channel returns.
- ``crash-restart`` — a switch crash wipes its key registers; requests in
  the window surface terminal failures, and after restart + re-keying
  authenticated writes succeed again.
- ``lossy-fig17`` — the Fig 17 HULA workload under 5% loss + reorder with
  live C-DP and DP-DP adversaries: zero forged state mutations land, the
  probe-tampered path attracts no traffic, delivery stays within the
  degradation envelope, and KMP re-converges within the event budget.

Everything is seeded; two runs with the same seed produce byte-identical
telemetry traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.attacks.control_plane import RegisterRequestTamperer, ReplayAttacker
from repro.attacks.link import ProbeFieldTamperer
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.constants import REG_OP, RegOpType
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.faults.injector import FaultInjector
from repro.faults.plan import ChannelBlackout, FaultPlan, LinkFault, NodeFault
from repro.net.network import Network
from repro.net.simulator import EventSimulator


@dataclass
class InvariantResult:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """Outcome of one chaos run: invariants plus headline numbers."""

    scenario: str
    seed: int
    invariants: List[InvariantResult] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(inv.passed for inv in self.invariants)

    def failures(self) -> List[InvariantResult]:
        return [inv for inv in self.invariants if not inv.passed]

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.invariants.append(InvariantResult(name, bool(passed), detail))

    def summary(self) -> str:
        lines = [f"scenario {self.scenario!r} (seed={self.seed}): "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        for inv in self.invariants:
            mark = "ok " if inv.passed else "FAIL"
            detail = f" — {inv.detail}" if inv.detail else ""
            lines.append(f"  [{mark}] {inv.name}{detail}")
        for key in sorted(self.metrics):
            lines.append(f"  {key} = {self.metrics[key]}")
        return "\n".join(lines)


class ChaosScenario:
    """Base class: a named, seeded workload-under-fault.

    ``default_plan`` is the scenario's fault-plan hook: a pure function
    of ``(seed, duration_s)`` the experiment engine also calls, so a
    sweep can reproduce or perturb the exact schedule a scenario arms.
    ``run(plan=...)`` overrides it.
    """

    name = "abstract"
    description = ""
    default_duration_s = 1.0

    @staticmethod
    def default_plan(seed: int, duration_s: float) -> FaultPlan:
        raise NotImplementedError

    def run(self, seed: int = 1, telemetry=None,
            duration_s: Optional[float] = None,
            plan: Optional[FaultPlan] = None) -> ChaosReport:
        raise NotImplementedError


class _Deployment:
    """A small provisioned P4Auth deployment (scenario building block)."""

    def __init__(self, num_switches: int, connect_pairs=(), registers=(),
                 telemetry=None, request_timeout_s: Optional[float] = None):
        self.sim = EventSimulator(telemetry=telemetry)
        self.net = Network(self.sim)
        self.dataplanes: Dict[str, P4AuthDataplane] = {}
        for index in range(1, num_switches + 1):
            name = f"s{index}"
            switch = DataplaneSwitch(name, num_ports=4, seed=1000 + index)
            self.net.add_switch(switch)
            for reg_name, width, size in registers:
                switch.registers.define(reg_name, width, size)
            dataplane = P4AuthDataplane(
                switch, k_seed=0xBEE0 + index, config=P4AuthConfig(),
            ).install()
            for reg_name, _w, _s in registers:
                dataplane.map_register(reg_name)
            self.dataplanes[name] = dataplane
        for name_a, port_a, name_b, port_b in connect_pairs:
            self.net.connect(name_a, port_a, name_b, port_b)
        self.controller = P4AuthController(
            self.net, request_timeout_s=request_timeout_s)
        for dataplane in self.dataplanes.values():
            self.controller.provision(dataplane)
        self.bootstrapped: List[float] = []
        self.controller.kmp.bootstrap_all(
            on_done=lambda: self.bootstrapped.append(self.sim.now))
        self.sim.run(until=0.1)


class KmpBlackoutScenario(ChaosScenario):
    """Key rollover issued into a control-channel blackout."""

    name = "kmp-blackout"
    description = ("Blackout both control channels; KMP ops issued inside "
                   "the window are abandoned, then re-converge after it.")
    default_duration_s = 1.5

    @staticmethod
    def default_plan(seed: int, duration_s: float) -> FaultPlan:
        return FaultPlan(seed=seed, blackouts=[
            ChannelBlackout("s1", start_s=0.2, end_s=0.5),
            ChannelBlackout("s2", start_s=0.2, end_s=0.5),
        ])

    def run(self, seed: int = 1, telemetry=None,
            duration_s: Optional[float] = None,
            plan: Optional[FaultPlan] = None) -> ChaosReport:
        duration = duration_s if duration_s is not None else 1.5
        report = ChaosReport(self.name, seed)
        dep = _Deployment(num_switches=2,
                          connect_pairs=[("s1", 1, "s2", 1)],
                          registers=[("demo", 64, 8)],
                          telemetry=telemetry)
        sim, kmp = dep.sim, dep.controller.kmp
        plan = plan or self.default_plan(seed, duration)
        injector = FaultInjector(dep.net, plan).arm()

        # Roll both local keys mid-blackout: every message is eaten, so
        # the bounded-retry machinery must abandon, not hang.
        sim.schedule(0.25 - sim.now, kmp.local_key_update, "s1")
        sim.schedule(0.25 - sim.now, kmp.local_key_update, "s2")
        # Re-issue after the channel returns.
        sim.schedule(0.8 - sim.now, kmp.local_key_update, "s1")
        sim.schedule(0.8 - sim.now, kmp.local_key_update, "s2")
        sim.run(until=duration, max_events=200_000)
        injector.disarm()

        write_results: List[bool] = []
        for switch in ("s1", "s2"):
            dep.controller.write_register(
                switch, "demo", 0, 0x600D,
                callback=lambda ok, _v: write_results.append(ok))
        sim.run(until=duration + 0.2, max_events=50_000)

        report.check("bootstrap_completed", bool(dep.bootstrapped))
        report.check("blackout_injected",
                     injector.stats.count("blackout") > 0,
                     f"{injector.stats.count('blackout')} messages eaten")
        report.check("ops_abandoned_not_hung",
                     len(kmp.stats.failures) == 2,
                     f"{len(kmp.stats.failures)} abandoned (expected 2)")
        report.check("kmp_reconverged",
                     kmp.stats.count("local_update") == 2,
                     f"{kmp.stats.count('local_update')} rollovers completed")
        report.check("no_dangling_exchanges",
                     not kmp._by_seq and not kmp._by_port)
        report.check("writes_ok_after_blackout",
                     write_results == [True, True], f"{write_results}")
        report.check("within_event_budget", sim.budget_exhaustions == 0)
        report.metrics.update({
            "events_executed": sim.events_executed,
            "blackout_drops": injector.stats.count("blackout"),
            "kmp_failures": len(kmp.stats.failures),
            "kmp_retries": kmp.stats.retries,
        })
        return report


class CrashRestartScenario(ChaosScenario):
    """Switch crash with register wipe, then restart and re-key."""

    name = "crash-restart"
    description = ("Crash a switch (wiping its key registers) mid-write; "
                   "requests fail terminally, then succeed after restart "
                   "and re-keying.")
    default_duration_s = 1.0

    @staticmethod
    def default_plan(seed: int, duration_s: float) -> FaultPlan:
        return FaultPlan(seed=seed, node_faults=[
            NodeFault("s1", crash_at_s=0.3, restart_at_s=0.5,
                      wipe_registers=True),
        ])

    def run(self, seed: int = 1, telemetry=None,
            duration_s: Optional[float] = None,
            plan: Optional[FaultPlan] = None) -> ChaosReport:
        duration = duration_s if duration_s is not None else 1.0
        report = ChaosReport(self.name, seed)
        dep = _Deployment(num_switches=1, registers=[("chaos", 64, 8)],
                          telemetry=telemetry, request_timeout_s=0.05)
        sim, controller = dep.sim, dep.controller
        plan = plan or self.default_plan(seed, duration)
        injector = FaultInjector(dep.net, plan).arm()
        rekeyed: List[float] = []
        injector.on_node_restart.append(
            lambda switch: controller.kmp.local_key_init(
                switch, on_done=lambda _r: rekeyed.append(sim.now)))

        outcomes: Dict[str, Optional[bool]] = {
            "before": None, "during": None, "after": None}

        def write(label: str, value: int) -> None:
            controller.write_register(
                "s1", "chaos", 0, value,
                callback=lambda ok, _v, key=label: outcomes.__setitem__(
                    key, ok))

        sim.schedule(0.15 - sim.now, write, "before", 0x1111)
        sim.schedule(0.35 - sim.now, write, "during", 0x2222)
        sim.schedule(0.7 - sim.now, write, "after", 0x3333)
        sim.run(until=duration, max_events=100_000)
        injector.disarm()

        final_value = dep.net.switch("s1").registers.get("chaos").read(0)
        report.check("bootstrap_completed", bool(dep.bootstrapped))
        report.check("write_before_crash_ok", outcomes["before"] is True)
        report.check("write_during_crash_fails_terminally",
                     outcomes["during"] is False,
                     f"outcome={outcomes['during']} (None = silent hang)")
        report.check("rekeyed_after_restart", bool(rekeyed))
        report.check("write_after_restart_ok", outcomes["after"] is True)
        report.check("register_holds_post_restart_value",
                     final_value == 0x3333, f"value={final_value:#x}")
        report.check("abandonment_counted",
                     controller.stats.requests_abandoned == 1,
                     f"{controller.stats.requests_abandoned} abandoned")
        report.check("within_event_budget", sim.budget_exhaustions == 0)
        report.metrics.update({
            "events_executed": sim.events_executed,
            "request_retries": controller.stats.request_retries,
            "requests_abandoned": controller.stats.requests_abandoned,
            "rekey_time_s": rekeyed[0] if rekeyed else -1.0,
        })
        return report


class LossyFig17Scenario(ChaosScenario):
    """Fig 17 HULA workload under 5% loss + reorder with live adversaries."""

    name = "lossy-fig17"
    description = ("HULA Fig 17 workload under 5% loss + reorder, with a "
                   "probe tamperer, a C-DP write tamperer, and a replayer: "
                   "no forged write lands, the compromised path attracts "
                   "no traffic, and KMP re-converges.")
    default_duration_s = 3.0

    @staticmethod
    def default_plan(seed: int, duration_s: float) -> FaultPlan:
        return FaultPlan(seed=seed, link_faults=[
            LinkFault("drop", probability=0.05, start_s=0.1,
                      end_s=duration_s),
            LinkFault("reorder", probability=0.05, delay_s=2e-4,
                      start_s=0.1, end_s=duration_s),
        ])

    def run(self, seed: int = 1, telemetry=None,
            duration_s: Optional[float] = None,
            plan: Optional[FaultPlan] = None) -> ChaosReport:
        from repro.net.topology import hula_fig3_topology
        from repro.systems.hula import (
            HulaDataplane,
            fig3_hula_configs,
            make_data_packet,
            make_probe,
        )

        duration = duration_s if duration_s is not None else 3.0
        grace = 0.5
        report = ChaosReport(self.name, seed)
        net, extras = hula_fig3_topology(telemetry=telemetry)
        sim = extras["sim"]
        configs = fig3_hula_configs()
        hulas = {name: HulaDataplane(net.switch(name), config).install()
                 for name, config in configs.items()}
        # The adversary's target register, defined before provisioning so
        # the controller's p4info covers it.
        net.switch("s4").registers.define("chaos_reg", 64, 4)
        dataplanes = {}
        for index, name in enumerate(sorted(configs)):
            dataplanes[name] = P4AuthDataplane(
                net.switch(name), k_seed=0xAB00 + index,
                config=P4AuthConfig(protected_headers={"hula_probe"}),
            ).install()
        dataplanes["s4"].map_register("chaos_reg")
        controller = P4AuthController(net, request_timeout_s=0.05)
        for dataplane in dataplanes.values():
            controller.provision(dataplane)
        bootstrapped: List[float] = []
        controller.kmp.bootstrap_all(
            on_done=lambda: bootstrapped.append(sim.now))
        sim.run(until=0.1)

        # --- faults: 5% loss + 5% reorder on every link, whole run ------
        plan = plan or self.default_plan(seed, duration)
        injector = FaultInjector(net, plan).arm()

        # --- adversaries: DP-DP probe tamper, C-DP write tamper + replay
        probe_tamperer = ProbeFieldTamperer("hula_probe", "path_util", 2,
                                            direction_filter="b->a")
        probe_tamperer.attach(net.link_between("s1", "s4"))
        chaos_reg_id = controller.register_id("s4", "chaos_reg")
        replayer = ReplayAttacker(
            lambda p: p.has(REG_OP) and p.get(REG_OP)["regId"] == chaos_reg_id)
        replayer.attach(net.control_channels["s4"])
        write_tamperer = RegisterRequestTamperer(
            chaos_reg_id, transform=lambda v: v ^ 0xDEAD)
        write_tamperer.attach(net.control_channels["s4"])

        # --- workload: Fig 17 probes + data, plus periodic C-DP writes --
        h1, h5 = extras["h1"], extras["h5"]

        def send_probe(probe_id: int = 0) -> None:
            if sim.now >= duration:
                return
            h5.send(make_probe(5, probe_id))
            sim.schedule(0.005, send_probe, probe_id + 1)

        def send_data(seq: int = 0) -> None:
            if sim.now >= duration:
                return
            h1.send(make_data_packet(5, flow_id=seq, seq=seq & 0xFFFF))
            sim.schedule(0.0002, send_data, seq + 1)

        issued = [0x1000 + k for k in range(64)]
        allowed = {0} | {v ^ 0 for v in issued}

        def send_write(k: int = 0) -> None:
            if sim.now >= duration:
                return
            controller.write_register("s4", "chaos_reg", 0, issued[k % 64])
            sim.schedule(0.1, send_write, k + 1)

        # Ground truth: sample the target register straight out of the
        # simulated ASIC; a forged write would show up here even if every
        # counter lied.
        from repro.attacks.personas import GroundTruthSampler
        sampler = GroundTruthSampler(sim, net.switch("s4"), "chaos_reg",
                                     allowed)

        # KMP churn under loss: periodic rollover of local and port keys.
        controller.kmp.schedule_rollover(1.0)
        sim.schedule(0.0, send_probe)
        sim.schedule(0.05, send_data)
        sim.schedule(0.2 - sim.now, send_write)
        sim.schedule(0.15 - sim.now, sampler.start, duration + grace)
        # Mid-chaos replay burst of the recorded (validly signed) writes.
        sim.schedule(duration / 2, replayer.replay, net, "s4", 8)
        sim.schedule(duration / 2, replayer.replay, net, "s4", 8)

        # Warmup snapshot for traffic shares (as in fig17).
        s1 = hulas["s1"]
        snapshot: Dict[int, int] = {}
        sim.schedule(0.5, lambda: snapshot.update(s1.data_tx_per_port))
        sim.run(until=duration, max_events=2_000_000)

        # Chaos over: withdraw faults and adversaries, re-converge.
        injector.disarm()
        controller.kmp.cancel_rollover()
        probe_tamperer.detach_all()
        write_tamperer.detach_all()
        replayer.detach_all()
        clean_write: List[bool] = []
        controller.write_register(
            "s4", "chaos_reg", 0, 0x600D,
            callback=lambda ok, _v: clean_write.append(ok))
        allowed.add(0x600D)
        sim.run(until=duration + grace, max_events=500_000)

        s4_stats = dataplanes["s4"].stats
        port_to_path = {port: name for name, port in extras["paths"].items()}
        counts = {name: s1.data_tx_per_port.get(port, 0) - snapshot.get(port, 0)
                  for port, name in port_to_path.items()}
        total = sum(counts.values()) or 1
        s4_share = counts.get("s4", 0) / total
        delivered = len(h5.received) / (h1.sent_count or 1)
        samples = sampler.samples
        forged = sampler.forged()
        kmp = controller.kmp

        report.check("bootstrap_completed", bool(bootstrapped))
        report.check("faults_injected", injector.stats.total() > 0,
                     f"{injector.stats.total()} injections")
        report.check("writes_tampered", write_tamperer.stats.modified > 0,
                     f"{write_tamperer.stats.modified} rewritten in flight")
        report.check("zero_forged_writes_landed", not forged,
                     f"{len(forged)} forged values observed in "
                     f"{len(samples)} samples")
        report.check("tampered_writes_rejected",
                     s4_stats.digest_fail_cdp > 0,
                     f"{s4_stats.digest_fail_cdp} C-DP digest failures")
        report.check("replays_rejected",
                     replayer.stats.injected > 0
                     and s4_stats.replays_detected > 0,
                     f"{replayer.stats.injected} injected, "
                     f"{s4_stats.replays_detected} detected")
        report.check("compromised_path_not_attracted", s4_share < 0.34,
                     f"s4 share {s4_share:.2f}")
        report.check("delivery_within_envelope", delivered >= 0.75,
                     f"{delivered:.2%} delivered under 5% loss + reorder")
        report.check("kmp_reconverged",
                     not kmp._by_seq and not kmp._by_port,
                     f"{len(kmp._by_seq)}+{len(kmp._by_port)} dangling")
        report.check("clean_write_after_chaos", clean_write == [True],
                     f"{clean_write}")
        report.check("within_event_budget", sim.budget_exhaustions == 0,
                     f"{sim.events_executed} events")
        report.metrics.update({
            "events_executed": sim.events_executed,
            "fault_injections": injector.stats.total(),
            "drops_injected": injector.stats.count("drop"),
            "reorders_injected": injector.stats.count("reorder"),
            "s4_share": round(s4_share, 4),
            "delivery_ratio": round(delivered, 4),
            "kmp_retries": kmp.stats.retries,
            "kmp_failures": len(kmp.stats.failures),
            "digest_fail_cdp": s4_stats.digest_fail_cdp,
            "replays_detected": s4_stats.replays_detected,
            "requests_abandoned": controller.stats.requests_abandoned,
        })
        return report


SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (KmpBlackoutScenario(), CrashRestartScenario(),
                     LossyFig17Scenario())
}

#: The cheapest scenarios, run by the CI chaos-smoke job.
SMOKE_SCENARIOS = ("kmp-blackout", "crash-restart")


def run_scenario(name: str, seed: int = 1, telemetry=None,
                 duration_s: Optional[float] = None,
                 plan: Optional[FaultPlan] = None) -> ChaosReport:
    """Look up and run one scenario by name."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown chaos scenario {name!r} "
                       f"(have: {sorted(SCENARIOS)})") from None
    return scenario.run(seed=seed, telemetry=telemetry,
                        duration_s=duration_s, plan=plan)


def report_to_dict(report: ChaosReport) -> dict:
    """Canonical trial form of a chaos run (includes derived ``passed``)."""
    return {
        "scenario": report.scenario,
        "seed": report.seed,
        "passed": report.passed,
        "invariants": [
            {"name": inv.name, "passed": inv.passed, "detail": inv.detail}
            for inv in report.invariants
        ],
        "metrics": dict(report.metrics),
    }


def _chaos_trial(ctx: TrialContext) -> dict:
    p = ctx.params
    report = run_scenario(p["scenario"], seed=p["seed"],
                          telemetry=ctx.telemetry,
                          duration_s=p["duration_s"],
                          plan=ctx.fault_plan)
    return report_to_dict(report)


def _register_chaos_specs() -> Dict[str, ExperimentSpec]:
    specs = {}
    for scenario in SCENARIOS.values():
        def fault_plan(params, seed,
                       _scenario=scenario) -> FaultPlan:
            return _scenario.default_plan(seed, params["duration_s"])

        specs[scenario.name] = register(ExperimentSpec(
            name=scenario.name,
            title="Chaos: "
                  + scenario.description.split(";")[0].split(",")[0],
            source="chaos",
            trial=_chaos_trial,
            defaults={"scenario": scenario.name, "seed": 1,
                      "duration_s": scenario.default_duration_s},
            seed_param="seed",
            supports_telemetry=True,
            fault_plan=fault_plan,
            tags=("chaos",),
        ))
    return specs


CHAOS_SPECS = _register_chaos_specs()
