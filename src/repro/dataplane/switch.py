"""The data-plane switch: ports, pipeline, registers, tables, externs.

:class:`DataplaneSwitch` is the pure packet-processing machine.  It has no
notion of time or links — it maps (packet, ingress port) to a list of
pipeline actions.  The network layer (:mod:`repro.net`) wraps switches in
nodes that schedule those actions on simulated links and charge
processing-time costs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dataplane.externs import HashExtern, RandomExtern
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import (
    Drop,
    Pipeline,
    PipelineAction,
    PipelineContext,
    Recirculate,
)
from repro.dataplane.registers import RegisterFile
from repro.dataplane.tables import MatchActionTable
from repro.telemetry import NULL_TELEMETRY

# Safety valve: a P4 program can recirculate, but hardware bounds the
# number of passes a packet can take.  This mirrors that bound.
MAX_RECIRCULATIONS = 8

#: Buckets for the batch-execution size histogram (packets per
#: :meth:`DataplaneSwitch.process_many` call).
PROCESS_BATCH_BUCKETS = (1, 8, 64, 256, 1024, 4096, 16384)


class DataplaneSwitch:
    """A programmable switch data plane.

    Parameters
    ----------
    name:
        Switch identifier (e.g., ``"s1"``).
    num_ports:
        Number of front-panel ports, numbered ``1..num_ports``.
        Port 0 is reserved as the CPU/controller port.
    hash_algorithm:
        Digest extern flavor: ``"halfsiphash"`` (BMv2) or ``"crc32"``
        (Tofino).
    seed:
        Seed for the switch's ``random()`` extern.
    """

    CPU_PORT = 0

    def __init__(self, name: str, num_ports: int = 8,
                 hash_algorithm: str = "halfsiphash", seed: int = 1):
        if num_ports < 1:
            raise ValueError("switch needs at least one port")
        self.name = name
        self.num_ports = num_ports
        self.registers = RegisterFile()
        self.tables: Dict[str, MatchActionTable] = {}
        self.pipeline = Pipeline(f"{name}-ingress")
        self.hash = HashExtern(hash_algorithm)
        self.random = RandomExtern(seed)
        self.packets_processed = 0
        self.packets_dropped = 0
        self.pipeline_passes = 0
        #: Drop tally by reason string (always on; a dict increment).
        self.drop_reasons: Dict[str, int] = {}
        #: Observability sink; :meth:`repro.net.network.Network.add_switch`
        #: rebinds this to the fabric's instance when one is enabled.
        self.telemetry = NULL_TELEMETRY

    # -- program construction ------------------------------------------------

    def add_table(self, table: MatchActionTable) -> MatchActionTable:
        if table.name in self.tables:
            raise ValueError(f"switch {self.name!r} already has table {table.name!r}")
        self.tables[table.name] = table
        return table

    def table(self, name: str) -> MatchActionTable:
        if name not in self.tables:
            raise KeyError(f"switch {self.name!r} has no table {name!r}")
        return self.tables[name]

    def valid_port(self, port: int) -> bool:
        return port == self.CPU_PORT or 1 <= port <= self.num_ports

    def introspect(self) -> Dict[str, object]:
        """Full static view of the installed program, for repro.verify.

        Returns the pipeline stage order plus per-table and per-register
        layout records — everything the live cross-checker needs to diff
        an installed switch against its declared IR without running a
        single packet.
        """
        return {
            "name": self.name,
            "num_ports": self.num_ports,
            "stages": self.pipeline.stage_names(),
            "tables": {name: t.describe() for name, t in self.tables.items()},
            "registers": self.registers.describe(),
        }

    # -- packet processing -----------------------------------------------------

    def process(self, packet: Packet, ingress_port: int,
                now: float = 0.0) -> List[PipelineAction]:
        """Run one packet through the pipeline, resolving recirculations.

        Returns the final list of externally visible actions (Emit,
        ToController, Drop).  Recirculations are resolved internally, each
        consuming one additional pipeline pass (visible to the timing
        model via :attr:`pipeline_passes`).
        """
        telemetry = self.telemetry
        final, passes = self._run_one(packet, ingress_port, now, telemetry)
        if telemetry.enabled:
            telemetry.metrics.counter("dataplane_pipeline_passes_total",
                                      switch=self.name).inc(passes)
        return final

    def process_many(self, batch: List[Tuple[Packet, int]],
                     now: float = 0.0) -> List[List[PipelineAction]]:
        """Run a batch of ``(packet, ingress_port)`` pairs; one result each.

        Semantically identical to ``[self.process(p, port, now) for
        (p, port) in batch]`` — same actions, same register mutations,
        same drop attribution, same hash-extern invocation counts, same
        telemetry totals — but per-packet Python overhead (attribute
        lookups, telemetry dispatch) is paid once per batch, which is
        what makes large trace replays affordable.  The resource and
        timing models are unchanged: every packet still consumes its own
        pipeline passes and extern invocations.
        """
        telemetry = self.telemetry
        run_one = self._run_one
        results: List[List[PipelineAction]] = []
        total_passes = 0
        for packet, ingress_port in batch:
            final, passes = run_one(packet, ingress_port, now, telemetry)
            total_passes += passes
            results.append(final)
        if telemetry.enabled:
            if total_passes:
                telemetry.metrics.counter("dataplane_pipeline_passes_total",
                                          switch=self.name).inc(total_passes)
            telemetry.metrics.counter("dataplane_process_batches_total",
                                      switch=self.name).inc()
            telemetry.metrics.histogram(
                "dataplane_process_batch_size",
                buckets=PROCESS_BATCH_BUCKETS,
                switch=self.name).observe(len(results))
        return results

    def _run_one(self, packet: Packet, ingress_port: int, now: float,
                 telemetry) -> Tuple[List[PipelineAction], int]:
        """One packet's pipeline run: (final actions, passes consumed)."""
        if not self.valid_port(ingress_port):
            raise ValueError(
                f"invalid ingress port {ingress_port} on switch {self.name!r}"
            )
        self.packets_processed += 1
        pending = [(packet, ingress_port)]
        final: List[PipelineAction] = []
        passes = 0
        while pending:
            current, port = pending.pop(0)
            passes += 1
            if passes > MAX_RECIRCULATIONS + 1:
                raise RuntimeError(
                    f"packet exceeded {MAX_RECIRCULATIONS} recirculations "
                    f"on switch {self.name!r}"
                )
            ctx = PipelineContext(self, current, port, now)
            for action in self.pipeline.run(ctx):
                if isinstance(action, Recirculate):
                    pending.append((action.packet, port))
                else:
                    final.append(action)
                    if isinstance(action, Drop):
                        self._count_drop(action, ctx, telemetry)
        self.pipeline_passes += passes
        self.packets_dropped += sum(
            1 for a in final if isinstance(a, Drop)
        )
        return final, passes

    def _count_drop(self, action: Drop, ctx: PipelineContext,
                    telemetry) -> None:
        """Attribute a pipeline drop to its reason and deciding stage."""
        reason = action.reason or "unspecified"
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        if telemetry.enabled:
            stage = ctx.stage_trace[-1] if ctx.stage_trace else "unstaged"
            telemetry.metrics.counter(
                "dataplane_drop_total", switch=self.name, stage=stage,
                reason=reason,
            ).inc()
            telemetry.tracer.emit("packet.drop", layer="pipeline",
                                  switch=self.name, stage=stage,
                                  reason=reason)

    def __repr__(self) -> str:
        return (
            f"DataplaneSwitch({self.name!r}, ports={self.num_ports}, "
            f"tables={len(self.tables)}, registers={len(self.registers)})"
        )
