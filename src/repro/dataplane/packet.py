"""Packets: an ordered header stack plus opaque payload and metadata.

Metadata models the PHV's per-packet scratch space (ingress port, bridged
state, P4Auth verdicts).  It never appears on the wire.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.dataplane.headers import Header

_packet_ids = itertools.count(1)


class Packet:
    """A network packet moving through the simulation."""

    def __init__(self, headers: Optional[List[Tuple[str, Header]]] = None,
                 payload: bytes = b""):
        # Header stack in outer-to-inner order, each entry (name, header).
        self._stack: List[Tuple[str, Header]] = list(headers or [])
        self.payload = payload
        self.metadata: Dict[str, object] = {}
        self.packet_id = next(_packet_ids)

    # -- header stack ------------------------------------------------------

    def push(self, name: str, header: Header) -> None:
        """Append a header as the innermost layer."""
        if self.has(name):
            raise ValueError(f"packet already carries header {name!r}")
        self._stack.append((name, header))

    def has(self, name: str) -> bool:
        return any(hname == name for hname, _ in self._stack)

    def get(self, name: str) -> Header:
        for hname, header in self._stack:
            if hname == name:
                return header
        raise KeyError(f"packet has no header {name!r}")

    def remove(self, name: str) -> Header:
        for index, (hname, header) in enumerate(self._stack):
            if hname == name:
                del self._stack[index]
                return header
        raise KeyError(f"packet has no header {name!r}")

    def header_names(self) -> List[str]:
        return [hname for hname, _ in self._stack]

    # -- size & serialization ---------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Wire size: all headers plus payload."""
        return sum(h.header_type.byte_width for _, h in self._stack) + len(self.payload)

    def serialize(self) -> bytes:
        return b"".join(h.serialize() for _, h in self._stack) + self.payload

    def copy(self) -> "Packet":
        """Deep copy with fresh packet id (models packet duplication)."""
        clone = Packet(
            [(name, header.copy()) for name, header in self._stack],
            self.payload,
        )
        clone.metadata = dict(self.metadata)
        return clone

    def __repr__(self) -> str:
        names = "/".join(self.header_names()) or "raw"
        return f"Packet#{self.packet_id}({names}, {self.size_bytes}B)"
