"""Stateful register arrays, mirroring P4 ``register`` externs.

Registers are the state that P4Auth protects: in-network systems keep path
utilization, latency aggregates, split ratios, and P4Auth itself keeps its
key material in a register array (local key at index 0, port keys at the
port-number index — paper §VII).
"""

from __future__ import annotations

from typing import Callable, Dict, List


class Register:
    """A fixed-size array of fixed-width unsigned cells."""

    def __init__(self, name: str, width_bits: int, size: int):
        if width_bits <= 0 or size <= 0:
            raise ValueError("width_bits and size must be positive")
        self.name = name
        self.width_bits = width_bits
        self.size = size
        self._cells: List[int] = [0] * size
        self.read_count = 0
        self.write_count = 0

    @property
    def mask(self) -> int:
        return (1 << self.width_bits) - 1

    def read(self, index: int) -> int:
        """Read the cell at ``index``."""
        self._check_index(index)
        self.read_count += 1
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        """Write ``value`` into the cell at ``index`` (must fit the width)."""
        self._check_index(index)
        if not 0 <= value <= self.mask:
            raise ValueError(
                f"value {value:#x} does not fit register {self.name!r} "
                f"({self.width_bits} bits)"
            )
        self.write_count += 1
        self._cells[index] = value

    def read_modify_write(self, index: int, fn: Callable[[int], int]) -> int:
        """Atomic read-modify-write, as a stateful ALU would perform."""
        self._check_index(index)
        new = fn(self._cells[index]) & self.mask
        self.read_count += 1
        self.write_count += 1
        self._cells[index] = new
        return new

    def clear(self) -> None:
        """Zero the whole array (controller-driven epoch reset)."""
        self._cells = [0] * self.size
        self.write_count += self.size

    def snapshot(self) -> List[int]:
        """A copy of all cells, for inspection in tests and metrics."""
        return list(self._cells)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(
                f"index {index} out of range for register {self.name!r} "
                f"(size {self.size})"
            )

    @property
    def total_bits(self) -> int:
        """Total SRAM footprint in bits."""
        return self.width_bits * self.size

    def describe(self) -> Dict[str, int]:
        """Static-analysis introspection record (consumed by repro.verify)."""
        return {"width_bits": self.width_bits, "size": self.size}

    def __repr__(self) -> str:
        return f"Register({self.name!r}, {self.width_bits}b x {self.size})"


class RegisterFile:
    """All register arrays of one switch, addressable by name and by id.

    The controller addresses registers by numeric identifier (from the
    p4info file) while the data plane knows them by name; the
    ``reg_id_to_name_mapping`` table in :mod:`repro.core.auth_dataplane`
    bridges the two, exactly as in the paper's Fig 15.
    """

    def __init__(self):
        self._by_name: Dict[str, Register] = {}
        self._ids: Dict[int, str] = {}
        self._next_id = 1

    def define(self, name: str, width_bits: int, size: int) -> Register:
        """Declare a register array; assigns the next p4info-style id."""
        if name in self._by_name:
            raise ValueError(f"register {name!r} already defined")
        register = Register(name, width_bits, size)
        self._by_name[name] = register
        self._ids[self._next_id] = name
        self._next_id += 1
        return register

    def get(self, name: str) -> Register:
        if name not in self._by_name:
            raise KeyError(f"no register named {name!r}")
        return self._by_name[name]

    def id_of(self, name: str) -> int:
        for reg_id, reg_name in self._ids.items():
            if reg_name == name:
                return reg_id
        raise KeyError(f"no register named {name!r}")

    def name_of(self, reg_id: int) -> str:
        if reg_id not in self._ids:
            raise KeyError(f"no register with id {reg_id}")
        return self._ids[reg_id]

    def names(self) -> List[str]:
        return list(self._by_name)

    def id_map(self) -> Dict[int, str]:
        """The id-to-name mapping, as the p4info file would expose it."""
        return dict(self._ids)

    def total_bits(self) -> int:
        return sum(r.total_bits for r in self._by_name.values())

    def describe(self) -> Dict[str, Dict[str, int]]:
        """Name -> layout record for every array (for repro.verify.live)."""
        return {name: reg.describe() for name, reg in self._by_name.items()}

    def __len__(self) -> int:
        return len(self._by_name)
