"""Match-action tables with exact, ternary, and LPM matching.

Actions are plain callables registered on the table; an entry names the
action and supplies parameters, as a control plane would install via
P4Runtime.  Ternary entries carry priorities (highest wins), LPM prefers
the longest prefix, exact matches are unambiguous — the standard PISA
semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class MatchKind(enum.Enum):
    """P4 match kinds supported by the table."""

    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"


@dataclass
class TableEntry:
    """One installed table entry.

    ``key`` holds one element per match field: an int for exact, a
    ``(value, mask)`` pair for ternary, and a ``(value, prefix_len)`` pair
    for LPM.
    """

    key: Tuple
    action: str
    params: Dict[str, int] = field(default_factory=dict)
    priority: int = 0

    def matches(self, kinds: Sequence[Tuple[MatchKind, int]],
                lookup_key: Sequence[int]) -> bool:
        for (kind, bits), spec, value in zip(kinds, self.key, lookup_key):
            if kind is MatchKind.EXACT:
                if spec != value:
                    return False
            elif kind is MatchKind.TERNARY:
                entry_value, mask = spec
                if (value & mask) != (entry_value & mask):
                    return False
            elif kind is MatchKind.LPM:
                entry_value, prefix_len = spec
                if prefix_len == 0:
                    continue
                mask = ((1 << prefix_len) - 1) << (bits - prefix_len)
                if (value & mask) != (entry_value & mask):
                    return False
        return True

    def lpm_length(self) -> int:
        """Total prefix length across LPM fields (for longest-prefix wins)."""
        total = 0
        for spec in self.key:
            if isinstance(spec, tuple) and len(spec) == 2:
                total += spec[1] if isinstance(spec[1], int) else 0
        return total


class MatchActionTable:
    """A match-action table bound to named action callables.

    Parameters
    ----------
    name:
        Table name (P4 table identifier).
    match_fields:
        ``(field_name, MatchKind, bit_width)`` triples describing the key.
    max_entries:
        Capacity, used for SRAM/TCAM accounting and install-time checks.
    """

    def __init__(self, name: str,
                 match_fields: Sequence[Tuple[str, MatchKind, int]],
                 max_entries: int = 1024):
        if not match_fields:
            raise ValueError("table needs at least one match field")
        self.name = name
        self.match_fields = list(match_fields)
        self.max_entries = max_entries
        self._entries: List[TableEntry] = []
        self._actions: Dict[str, Callable] = {}
        self._default_action: Optional[str] = None
        self._default_params: Dict[str, int] = {}
        self.hit_count = 0
        self.miss_count = 0

    # -- configuration (control-plane surface) -----------------------------

    def register_action(self, name: str, fn: Callable) -> None:
        """Bind an action name to a callable (compile-time binding in P4)."""
        if name in self._actions:
            raise ValueError(f"action {name!r} already registered on {self.name!r}")
        self._actions[name] = fn

    def set_default(self, action: str, **params: int) -> None:
        if action not in self._actions:
            raise KeyError(f"unknown action {action!r} on table {self.name!r}")
        self._default_action = action
        self._default_params = params

    def insert(self, entry: TableEntry) -> None:
        """Install an entry (what P4Runtime's TableEntry write does)."""
        if entry.action not in self._actions:
            raise KeyError(f"unknown action {entry.action!r} on table {self.name!r}")
        if len(entry.key) != len(self.match_fields):
            raise ValueError(
                f"entry key arity {len(entry.key)} != "
                f"table key arity {len(self.match_fields)}"
            )
        if len(self._entries) >= self.max_entries:
            raise RuntimeError(f"table {self.name!r} is full ({self.max_entries})")
        self._entries.append(entry)

    def remove_where(self, predicate: Callable[[TableEntry], bool]) -> int:
        """Remove entries matching a predicate; returns how many."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        return before - len(self._entries)

    def clear(self) -> None:
        self._entries = []

    def entries(self) -> List[TableEntry]:
        return list(self._entries)

    # -- data-plane lookup ---------------------------------------------------

    def lookup(self, *lookup_key: int):
        """Match ``lookup_key`` and run the winning entry's action.

        Returns whatever the action callable returns (often None; actions
        typically mutate the pipeline context passed via closure or params).
        """
        kinds = [(kind, bits) for _, kind, bits in self.match_fields]
        candidates = [e for e in self._entries if e.matches(kinds, lookup_key)]
        if candidates:
            has_ternary = any(kind is MatchKind.TERNARY for kind, _ in kinds)
            has_lpm = any(kind is MatchKind.LPM for kind, _ in kinds)
            if has_ternary:
                winner = max(candidates, key=lambda e: e.priority)
            elif has_lpm:
                winner = max(candidates, key=lambda e: (e.lpm_length(), e.priority))
            else:
                winner = candidates[0]
            self.hit_count += 1
            return self._actions[winner.action](**winner.params)
        self.miss_count += 1
        if self._default_action is not None:
            return self._actions[self._default_action](**self._default_params)
        return None

    @property
    def uses_tcam(self) -> bool:
        """Ternary/LPM keys consume TCAM; exact-only tables live in SRAM."""
        return any(
            kind in (MatchKind.TERNARY, MatchKind.LPM)
            for _, kind, _ in self.match_fields
        )

    @property
    def has_default(self) -> bool:
        """True once a default (miss) action has been configured."""
        return self._default_action is not None

    @property
    def match_kind(self) -> str:
        """Dominant match kind: ternary > lpm > exact (TCAM precedence)."""
        kinds = {kind for _, kind, _ in self.match_fields}
        if MatchKind.TERNARY in kinds:
            return "ternary"
        if MatchKind.LPM in kinds:
            return "lpm"
        return "exact"

    def key_bits(self) -> int:
        return sum(bits for _, _, bits in self.match_fields)

    def describe(self) -> Dict[str, object]:
        """Static-analysis introspection record (consumed by repro.verify)."""
        return {
            "name": self.name,
            "key_bits": self.key_bits(),
            "entries": self.max_entries,
            "match_kind": self.match_kind,
            "has_default": self.has_default,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"MatchActionTable({self.name!r}, {len(self._entries)} entries)"
