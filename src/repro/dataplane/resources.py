"""Tofino-like hardware resource accounting (reproduces Table II).

A :class:`ProgramSpec` is the declarative inventory of a compiled P4
program: tables (with sizes and match kinds), register arrays, hash-unit
invocations wired into the pipeline, and PHV containers claimed by headers
and metadata.  :class:`ResourceModel` prices each construct against
capacities abstracted from a single Tofino pipe and reports utilization
percentages for the four resources the paper tables: TCAM, SRAM, hash
units, and PHV.

Capacity abstraction (documented calibration, see DESIGN.md):

- **TCAM**: 288 blocks (24 blocks/stage x 12 stages); a ternary/LPM table
  costs ``ceil(key_bits/44) * ceil(entries/512)`` blocks.
- **SRAM**: 960 blocks of 128 Kbit (80 blocks/stage x 12 stages); exact
  tables, action data, and register arrays cost
  ``ceil(total_bits/131072)`` blocks each (minimum one block per array,
  matching hardware allocation granularity).
- **Hash units**: 72 (6/stage x 12 stages); each distinct hash computation
  wired into the pipeline claims units proportional to its input width.
- **PHV**: 216 32-bit containers; each header/metadata field claims
  ``ceil(bits/32)`` containers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

TCAM_BLOCKS = 288
SRAM_BLOCKS = 960
SRAM_BLOCK_BITS = 128 * 1024
HASH_UNITS = 72
PHV_CONTAINERS = 216

_TCAM_SLICE_BITS = 44
_TCAM_SLICE_ENTRIES = 512


@dataclass
class TableCost:
    name: str
    key_bits: int
    entries: int
    uses_tcam: bool
    action_data_bits: int = 32


@dataclass
class RegisterCost:
    name: str
    width_bits: int
    size: int


@dataclass
class HashCost:
    name: str
    units: int


@dataclass
class ResourceReport:
    """Utilization percentages, plus the raw block/unit counts behind them."""

    tcam_pct: float
    sram_pct: float
    hash_pct: float
    phv_pct: float
    tcam_blocks: int
    sram_blocks: int
    hash_units: int
    phv_containers: int

    def as_row(self) -> Dict[str, float]:
        return {
            "TCAM": self.tcam_pct,
            "SRAM": self.sram_pct,
            "Hash Units": self.hash_pct,
            "PHV": self.phv_pct,
        }


class ProgramSpec:
    """Declarative resource inventory of one compiled P4 program."""

    def __init__(self, name: str):
        self.name = name
        self._tables: List[TableCost] = []
        self._registers: List[RegisterCost] = []
        self._hashes: List[HashCost] = []
        self._phv_containers = 0

    def add_table(self, name: str, key_bits: int, entries: int,
                  uses_tcam: bool, action_data_bits: int = 32) -> "ProgramSpec":
        self._tables.append(
            TableCost(name, key_bits, entries, uses_tcam, action_data_bits)
        )
        return self

    def add_register(self, name: str, width_bits: int, size: int) -> "ProgramSpec":
        self._registers.append(RegisterCost(name, width_bits, size))
        return self

    def add_hash(self, name: str, units: int) -> "ProgramSpec":
        """Claim hash distribution units for one wired-in hash computation."""
        self._hashes.append(HashCost(name, units))
        return self

    def add_headers(self, name: str, bits: int) -> "ProgramSpec":
        """Claim PHV containers for a header or metadata group."""
        self._phv_containers += math.ceil(bits / 32)
        return self

    def add_phv_containers(self, count: int) -> "ProgramSpec":
        self._phv_containers += count
        return self

    def extend(self, other: "ProgramSpec") -> "ProgramSpec":
        """Overlay another spec (how "baseline + P4Auth" is composed)."""
        self._tables.extend(other._tables)
        self._registers.extend(other._registers)
        self._hashes.extend(other._hashes)
        self._phv_containers += other._phv_containers
        return self

    # -- cost computation --------------------------------------------------------

    def tcam_blocks(self) -> int:
        total = 0
        for t in self._tables:
            if t.uses_tcam:
                slices = math.ceil(t.key_bits / _TCAM_SLICE_BITS)
                depth = math.ceil(t.entries / _TCAM_SLICE_ENTRIES)
                total += slices * depth
        return total

    def sram_blocks(self) -> int:
        total = 0
        for t in self._tables:
            if t.uses_tcam:
                # TCAM tables keep their action data in SRAM.
                bits = t.entries * t.action_data_bits
            else:
                bits = t.entries * (t.key_bits + t.action_data_bits)
            total += max(1, math.ceil(bits / SRAM_BLOCK_BITS))
        for r in self._registers:
            total += max(1, math.ceil(r.width_bits * r.size / SRAM_BLOCK_BITS))
        return total

    def hash_units(self) -> int:
        base = 0
        for t in self._tables:
            if not t.uses_tcam:
                # Exact-match tables hash their key for SRAM placement.
                base += max(1, math.ceil(t.key_bits / 128))
        return base + sum(h.units for h in self._hashes)

    def phv_containers(self) -> int:
        return self._phv_containers


class ResourceModel:
    """Prices a :class:`ProgramSpec` against the abstract Tofino pipe."""

    def report(self, spec: ProgramSpec) -> ResourceReport:
        tcam = spec.tcam_blocks()
        sram = spec.sram_blocks()
        hashes = spec.hash_units()
        phv = spec.phv_containers()
        for used, capacity, label in (
            (tcam, TCAM_BLOCKS, "TCAM"),
            (sram, SRAM_BLOCKS, "SRAM"),
            (hashes, HASH_UNITS, "hash units"),
            (phv, PHV_CONTAINERS, "PHV"),
        ):
            if used > capacity:
                raise RuntimeError(
                    f"program {spec.name!r} does not fit: {label} "
                    f"{used}/{capacity}"
                )
        return ResourceReport(
            tcam_pct=round(100.0 * tcam / TCAM_BLOCKS, 1),
            sram_pct=round(100.0 * sram / SRAM_BLOCKS, 1),
            hash_pct=round(100.0 * hashes / HASH_UNITS, 1),
            phv_pct=round(100.0 * phv / PHV_CONTAINERS, 1),
            tcam_blocks=tcam,
            sram_blocks=sram,
            hash_units=hashes,
            phv_containers=phv,
        )
