"""The match-action pipeline and its per-packet execution context.

A pipeline is an ordered list of named stages, each a callable over a
:class:`PipelineContext`.  Stages correspond to P4 control blocks; they
may consult tables, read/write registers, and record verdicts.  The
context collects the packet's fate as a list of actions (:class:`Emit`,
:class:`ToController`, :class:`Drop`, :class:`Recirculate`) that the
network layer turns into scheduled events.

There is deliberately no way for a stage to loop over the packet — the
structure mirrors PISA's feed-forward constraint.  Recirculation is the
only iteration mechanism, and it is explicit and costed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.dataplane.packet import Packet


@dataclass
class Emit:
    """Forward the packet out of an egress port."""

    port: int
    packet: Packet


@dataclass
class ToController:
    """Send the packet to the controller as a PacketIn message."""

    packet: Packet
    reason: str = ""


@dataclass
class Drop:
    """Discard the packet."""

    packet: Packet
    reason: str = ""


@dataclass
class Recirculate:
    """Re-inject the packet at the top of the pipeline (costs a pass)."""

    packet: Packet


#: Everything a stage can do with a packet.  The network layer
#: dispatches on the concrete type; keeping the union closed here means
#: a new verdict class must also teach the dispatcher about itself.
PipelineAction = Union[Emit, ToController, Drop, Recirculate]


class PipelineContext:
    """Mutable per-packet state threaded through the pipeline stages."""

    def __init__(self, switch, packet: Packet, ingress_port: int, now: float = 0.0):
        self.switch = switch
        self.packet = packet
        self.ingress_port = ingress_port
        self.now = now
        self.actions: List[PipelineAction] = []
        self._stopped = False
        self.stage_trace: List[str] = []

    # -- verdicts -----------------------------------------------------------

    def emit(self, port: int, packet: Optional[Packet] = None) -> None:
        """Queue the packet (or a clone) for egress on ``port``."""
        self.actions.append(Emit(port, packet if packet is not None else self.packet))

    def to_controller(self, packet: Optional[Packet] = None, reason: str = "") -> None:
        """Queue a PacketIn toward the controller."""
        self.actions.append(
            ToController(packet if packet is not None else self.packet, reason)
        )

    def drop(self, reason: str = "") -> None:
        """Discard the packet and stop further stages."""
        self.actions.append(Drop(self.packet, reason))
        self._stopped = True

    def recirculate(self, packet: Optional[Packet] = None) -> None:
        self.actions.append(
            Recirculate(packet if packet is not None else self.packet)
        )

    def stop(self) -> None:
        """Short-circuit the remaining stages (like P4's exit)."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped


Stage = Callable[[PipelineContext], None]


class Pipeline:
    """An ordered, feed-forward list of named stages."""

    def __init__(self, name: str = "ingress"):
        self.name = name
        self._stages: List[Tuple[str, Stage]] = []

    def add_stage(self, name: str, fn: Stage) -> "Pipeline":
        """Append a stage; returns self for chaining."""
        if any(existing == name for existing, _ in self._stages):
            raise ValueError(f"pipeline already has a stage named {name!r}")
        self._stages.append((name, fn))
        return self

    def insert_stage(self, index: int, name: str, fn: Stage) -> "Pipeline":
        """Insert a stage at a position (P4Auth installs itself first)."""
        if any(existing == name for existing, _ in self._stages):
            raise ValueError(f"pipeline already has a stage named {name!r}")
        self._stages.insert(index, (name, fn))
        return self

    def stage_names(self) -> List[str]:
        return [name for name, _ in self._stages]

    def describe(self) -> dict:
        """Static-analysis introspection record (consumed by repro.verify)."""
        return {"name": self.name, "stages": self.stage_names()}

    def run(self, ctx: PipelineContext) -> List[PipelineAction]:
        """Execute the stages in order until done or stopped."""
        # Per-stage occupancy counters; ctx.switch may be a bare stub in
        # unit tests, hence the defensive getattr.
        telemetry = getattr(ctx.switch, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            metrics = telemetry.metrics
            switch_name = getattr(ctx.switch, "name", "?")
        else:
            metrics = None
            switch_name = ""
        for name, fn in self._stages:
            if ctx.stopped:
                break
            ctx.stage_trace.append(name)
            if metrics is not None:
                metrics.counter("dataplane_stage_packets_total",
                                switch=switch_name, stage=name).inc()
            fn(ctx)
        return ctx.actions

    def __len__(self) -> int:
        return len(self._stages)
