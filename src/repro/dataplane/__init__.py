"""PISA-style programmable switch simulator.

This package is the substitute for the paper's BMv2/Tofino targets: a
multi-stage match-action pipeline with registers, tables, hash externs, a
restricted ALU, and a Tofino-like resource model.  Victim systems (HULA,
RouteScout, ...) and P4Auth itself are written as pipelines over this
substrate, so the data-plane feasibility constraints the paper leans on
(no loops, limited per-packet ops, hash units as the only crypto) are
enforced structurally rather than assumed.
"""

from repro.dataplane.headers import HeaderType, Header
from repro.dataplane.packet import Packet
from repro.dataplane.registers import Register, RegisterFile
from repro.dataplane.tables import MatchActionTable, TableEntry, MatchKind
from repro.dataplane.pipeline import (
    Pipeline,
    PipelineContext,
    Emit,
    ToController,
    Drop,
    Recirculate,
)
from repro.dataplane.switch import DataplaneSwitch
from repro.dataplane.resources import ResourceModel, ProgramSpec, ResourceReport

__all__ = [
    "HeaderType",
    "Header",
    "Packet",
    "Register",
    "RegisterFile",
    "MatchActionTable",
    "TableEntry",
    "MatchKind",
    "Pipeline",
    "PipelineContext",
    "Emit",
    "ToController",
    "Drop",
    "Recirculate",
    "DataplaneSwitch",
    "ResourceModel",
    "ProgramSpec",
    "ResourceReport",
]
