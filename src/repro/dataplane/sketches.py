"""Compact data-plane data structures (bloom filter, count-min, IBLT).

The Table I systems keep their state in exactly these structures:
SilkRoad's transit table is a bloom filter, NetCache's query statistics
live in a count-min sketch, and FlowRadar's encoded flowset is an
invertible bloom lookup table (IBLT).  All three are implemented over
:class:`~repro.dataplane.registers.Register` arrays with CRC32-derived
hash functions, the way the real P4 programs realize them — so they are
readable (and attackable) through the same C-DP register interface as any
other switch state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.halfsiphash import HalfSipHash
from repro.dataplane.registers import RegisterFile

# CRC32 is GF(2)-linear, so a salted-CRC family is affinely correlated:
# two items at a constant XOR offset collide under *every* salt at once,
# which wrecks bloom-filter false-positive rates and IBLT decoding.  The
# sketches therefore use HalfSipHash (nonlinear, keyed per salt), which
# is equally implementable on the switch (paper §VII).
_hsh = HalfSipHash(compression_rounds=1, finalization_rounds=2)


def _hash(value: int, salt: int) -> int:
    """One member of the keyed (per-salt) hash family."""
    key = (0x9E3779B97F4A7C15 ^ (salt * 0x100000001B3)) & ((1 << 64) - 1)
    return _hsh.digest(key, value.to_bytes(8, "little"))


class BloomFilter:
    """A k-hash bloom filter over a 1-bit register array."""

    def __init__(self, registers: RegisterFile, name: str, bits: int = 4096,
                 num_hashes: int = 3):
        if bits <= 0 or num_hashes <= 0:
            raise ValueError("bits and num_hashes must be positive")
        self.bits = bits
        self.num_hashes = num_hashes
        self._cells = registers.define(name, 1, bits)

    def _positions(self, item: int) -> List[int]:
        return [_hash(item, salt) % self.bits
                for salt in range(self.num_hashes)]

    def insert(self, item: int) -> None:
        for position in self._positions(item):
            self._cells.write(position, 1)

    def __contains__(self, item: int) -> bool:
        return all(self._cells.read(p) == 1 for p in self._positions(item))

    def clear(self) -> None:
        """The controller-triggered reset SilkRoad's attack targets."""
        self._cells.clear()

    def fill_ratio(self) -> float:
        return sum(self._cells.snapshot()) / self.bits


class CountMinSketch:
    """A d x w count-min sketch over d register rows."""

    def __init__(self, registers: RegisterFile, name: str, width: int = 1024,
                 depth: int = 3, counter_bits: int = 32):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self._rows = [
            registers.define(f"{name}_row{row}", counter_bits, width)
            for row in range(depth)
        ]

    def update(self, item: int, count: int = 1) -> None:
        for row_index, row in enumerate(self._rows):
            position = _hash(item, 0x100 + row_index) % self.width
            row.read_modify_write(position, lambda v: v + count)

    def estimate(self, item: int) -> int:
        return min(
            row.read(_hash(item, 0x100 + row_index) % self.width)
            for row_index, row in enumerate(self._rows)
        )

    def clear(self) -> None:
        for row in self._rows:
            row.clear()

    def row_register(self, row: int):
        """Access a row's register (the C-DP read surface)."""
        return self._rows[row]


class Iblt:
    """Invertible bloom lookup table — FlowRadar's encoded flowset.

    Each of the k cells an item maps to accumulates: ``count += 1``,
    ``id_xor ^= flow_id``, ``value_sum += value``.  Pure cells
    (count == 1) can be peeled out, recovering the full flow set when
    loaded below capacity.
    """

    def __init__(self, registers: RegisterFile, name: str, cells: int = 256,
                 num_hashes: int = 3):
        if cells <= 0 or num_hashes <= 0:
            raise ValueError("cells and num_hashes must be positive")
        self.cells = cells
        self.num_hashes = num_hashes
        self.count = registers.define(f"{name}_count", 32, cells)
        self.id_xor = registers.define(f"{name}_idxor", 64, cells)
        self.value_sum = registers.define(f"{name}_valsum", 64, cells)

    def _positions(self, flow_id: int) -> List[int]:
        return sorted({_hash(flow_id, 0x200 + salt) % self.cells
                       for salt in range(self.num_hashes)})

    def insert(self, flow_id: int, value: int = 1) -> None:
        for position in self._positions(flow_id):
            self.count.read_modify_write(position, lambda v: v + 1)
            self.id_xor.read_modify_write(position, lambda v: v ^ flow_id)
            self.value_sum.read_modify_write(position, lambda v: v + value)

    def clear(self) -> None:
        self.count.clear()
        self.id_xor.clear()
        self.value_sum.clear()

    def export(self) -> List[Tuple[int, int, int]]:
        """Snapshot all cells as (count, id_xor, value_sum) triples."""
        return list(zip(self.count.snapshot(), self.id_xor.snapshot(),
                        self.value_sum.snapshot()))

    @staticmethod
    def decode(cells: List[Tuple[int, int, int]],
               num_hashes: int = 3) -> Optional[Dict[int, int]]:
        """Peel an exported cell list back into {flow_id: value}.

        Returns None if decoding fails (cells corrupted or overloaded) —
        which is precisely what a tampered export produces.
        """
        table = [list(cell) for cell in cells]
        size = len(table)

        def positions(flow_id: int) -> List[int]:
            return sorted({_hash(flow_id, 0x200 + salt) % size
                           for salt in range(num_hashes)})

        decoded: Dict[int, int] = {}
        progress = True
        while progress:
            progress = False
            for index in range(size):
                count, id_xor, value_sum = table[index]
                if count != 1:
                    continue
                flow_id, value = id_xor, value_sum
                expected = positions(flow_id)
                if index not in expected:
                    # A "pure" cell whose id doesn't hash back here:
                    # corruption detected.
                    return None
                decoded[flow_id] = decoded.get(flow_id, 0) + value
                for position in expected:
                    table[position][0] -= 1
                    table[position][1] ^= flow_id
                    table[position][2] -= value
                progress = True
        if any(cell[0] != 0 or cell[1] != 0 or cell[2] != 0 for cell in table):
            return None
        return decoded
