"""Header types and instances, mirroring P4 header declarations.

A :class:`HeaderType` declares an ordered list of (field, bit-width) pairs,
like a P4 ``header`` type.  A :class:`Header` is an instance with concrete
field values; it serializes to bytes by packing fields big-endian in
declaration order, which is how the wire format (and therefore message
byte counts in Table III) is computed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


class HeaderType:
    """An ordered set of fixed-width fields, like a P4 header type."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, int]]):
        if not fields:
            raise ValueError("header type needs at least one field")
        self.name = name
        self.fields: List[Tuple[str, int]] = list(fields)
        seen = set()
        total = 0
        for fname, bits in self.fields:
            if fname in seen:
                raise ValueError(f"duplicate field {fname!r} in header {name!r}")
            if bits <= 0:
                raise ValueError(f"field {fname!r} must have positive width")
            seen.add(fname)
            total += bits
        if total % 8 != 0:
            raise ValueError(
                f"header {name!r} is {total} bits; headers must be byte-aligned"
            )
        self.bit_width = total

    @property
    def byte_width(self) -> int:
        """Serialized size in bytes."""
        return self.bit_width // 8

    def field_width(self, field: str) -> int:
        for fname, bits in self.fields:
            if fname == field:
                return bits
        raise KeyError(f"header {self.name!r} has no field {field!r}")

    def instantiate(self, **values: int) -> "Header":
        """Create a header instance; unset fields default to zero."""
        return Header(self, values)

    def parse(self, data: bytes) -> "Header":
        """Parse a header instance from the front of ``data``."""
        if len(data) < self.byte_width:
            raise ValueError(
                f"need {self.byte_width} bytes to parse {self.name!r}, got {len(data)}"
            )
        as_int = int.from_bytes(data[: self.byte_width], "big")
        values: Dict[str, int] = {}
        remaining = self.bit_width
        for fname, bits in self.fields:
            remaining -= bits
            values[fname] = (as_int >> remaining) & ((1 << bits) - 1)
        return Header(self, values)

    def __repr__(self) -> str:
        return f"HeaderType({self.name!r}, {self.bit_width} bits)"


class Header:
    """A concrete header instance with field values."""

    def __init__(self, header_type: HeaderType, values: Dict[str, int]):
        self.header_type = header_type
        self._values: Dict[str, int] = {fname: 0 for fname, _ in header_type.fields}
        for fname, value in values.items():
            self[fname] = value

    def __getitem__(self, field: str) -> int:
        if field not in self._values:
            raise KeyError(f"header {self.header_type.name!r} has no field {field!r}")
        return self._values[field]

    def __setitem__(self, field: str, value: int) -> None:
        bits = self.header_type.field_width(field)
        if not 0 <= value < (1 << bits):
            raise ValueError(
                f"value {value:#x} does not fit field {field!r} ({bits} bits)"
            )
        self._values[field] = value

    def fields(self) -> Dict[str, int]:
        """A copy of the field values."""
        return dict(self._values)

    def field_words(self, exclude: Iterable[str] = ()) -> List[int]:
        """Field values in declaration order, optionally excluding some.

        Used by the digest module, which hashes all P4Auth header fields
        *except* the digest field itself (paper Eqn. 4).
        """
        skip = set(exclude)
        return [
            self._values[fname]
            for fname, _ in self.header_type.fields
            if fname not in skip
        ]

    def serialize(self) -> bytes:
        """Pack the header to bytes, big-endian in declaration order."""
        as_int = 0
        for fname, bits in self.header_type.fields:
            as_int = (as_int << bits) | self._values[fname]
        return as_int.to_bytes(self.header_type.byte_width, "big")

    def copy(self) -> "Header":
        return Header(self.header_type, dict(self._values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Header):
            return NotImplemented
        return (
            self.header_type.name == other.header_type.name
            and self._values == other._values
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:#x}" for k, v in self._values.items())
        return f"Header({self.header_type.name}: {inner})"
