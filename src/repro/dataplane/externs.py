"""Target externs: hash engines and the random() primitive.

The paper's prototype exposes digest computation as a BMv2 extern
(``compute_digest``) and uses the native CRC unit on Tofino.  This module
provides both as :class:`HashExtern` flavors, each counting its
invocations so the resource/timing models can account for hash-unit usage
(Table II) and per-digest latency (Fig 18/19/21).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash
from repro.crypto.prng import XorShiftPrng


class HashExtern:
    """A keyed-digest extern with invocation counting.

    ``algorithm`` selects the underlying keyed hash: ``"halfsiphash"``
    (BMv2 target) or ``"crc32"`` (Tofino target).
    """

    def __init__(self, algorithm: str = "halfsiphash"):
        if algorithm == "halfsiphash":
            self._engine = HalfSipHash()
            self._compute = self._engine.digest
        elif algorithm == "crc32":
            crc = Crc32()
            self._compute = crc.compute_keyed
        else:
            raise ValueError(f"unknown hash algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.invocations = 0

    def compute_digest(self, key: int, words: Iterable[int],
                       word_bits: int = 32) -> int:
        """The ``compute_digest`` extern: keyed 32-bit digest over words.

        Matches the BMv2 extern signature from §VII: a 64-bit secret key
        and a variable list of arguments over which the digest is computed.
        """
        width = word_bits // 8
        material = bytearray()
        for word in words:
            material += int(word).to_bytes(width, "little")
        self.invocations += 1
        return self._compute(key, bytes(material))

    def compute_digest_bytes(self, key: int, data: bytes) -> int:
        """Keyed 32-bit digest over raw bytes."""
        self.invocations += 1
        return self._compute(key, data)


class RandomExtern:
    """P4's ``random()``: uniform values of a declared bit width."""

    def __init__(self, seed: int = 1):
        self._prng = XorShiftPrng(seed)
        self.invocations = 0

    def random(self, bits: int = 64) -> int:
        self.invocations += 1
        return self._prng.next_bits(bits)
