"""P4-16 source generation for the P4Auth data plane.

The paper's artifact is a ~400-line P4 program (§VII).  This module emits
that program's skeleton — headers, parser, registers, the
``reg_id_to_name_mapping`` table, and the verify/sign control blocks —
*derived from the same constants the simulator runs on*:
:data:`~repro.core.constants.P4AUTH_HEADER` drives the header declaration,
a :class:`~repro.core.auth_dataplane.P4AuthDataplane` instance drives the
register sizes and mapped-register actions.

The output targets the v1model architecture (the BMv2 flavor of the
prototype); digest computation appears as the paper's ``compute_digest``
extern.  It is a faithful structural artifact, not a drop-in compiled
binary: round-unrolled HalfSipHash bodies are emitted as extern calls,
exactly as the paper describes the BMv2 implementation.
"""

from __future__ import annotations

import io
from typing import List, Optional

from repro.core.constants import (
    ADHKD_HEADER,
    ALERT_HEADER,
    EAK_HEADER,
    KEYCTL_HEADER,
    P4AUTH_HEADER,
    REG_OP_HEADER,
    HdrType,
    KeyExchType,
    RegOpType,
)
from repro.dataplane.headers import HeaderType

_ALL_HEADERS = (P4AUTH_HEADER, REG_OP_HEADER, EAK_HEADER, ADHKD_HEADER,
                KEYCTL_HEADER, ALERT_HEADER)


def _emit_header(out: io.StringIO, header_type: HeaderType) -> None:
    out.write(f"header {header_type.name}_t {{\n")
    for fname, bits in header_type.fields:
        out.write(f"    bit<{bits}> {fname};\n")
    out.write("}\n\n")


def _emit_headers(out: io.StringIO) -> None:
    out.write("/* -------- protocol headers (Fig 7) -------- */\n\n")
    for header_type in _ALL_HEADERS:
        _emit_header(out, header_type)
    out.write("struct headers_t {\n")
    out.write("    ethernet_t ethernet;\n")
    for header_type in _ALL_HEADERS:
        out.write(f"    {header_type.name}_t {header_type.name};\n")
    out.write("}\n\n")


def _emit_parser(out: io.StringIO) -> None:
    out.write("/* -------- parser: dispatch on hdrType/msgType -------- */\n\n")
    out.write(
        "parser P4AuthParser(packet_in pkt, out headers_t hdr,\n"
        "                    inout metadata_t meta,\n"
        "                    inout standard_metadata_t std_meta) {\n"
        "    state start {\n"
        "        pkt.extract(hdr.ethernet);\n"
        "        transition select(hdr.ethernet.etherType) {\n"
        "            ETHERTYPE_P4AUTH: parse_p4auth;\n"
        "            default: accept;\n"
        "        }\n"
        "    }\n"
        "    state parse_p4auth {\n"
        "        pkt.extract(hdr.p4auth);\n"
        "        transition select(hdr.p4auth.hdrType) {\n"
        f"            {int(HdrType.REGISTER_OP)}: parse_reg_op;\n"
        f"            {int(HdrType.ALERT)}: parse_alert;\n"
        f"            {int(HdrType.KEY_EXCHANGE)}: parse_key_exchange;\n"
        "            default: accept;\n"
        "        }\n"
        "    }\n"
        "    state parse_reg_op {\n"
        "        pkt.extract(hdr.reg_op);\n"
        "        transition accept;\n"
        "    }\n"
        "    state parse_alert {\n"
        "        pkt.extract(hdr.alert);\n"
        "        transition accept;\n"
        "    }\n"
        "    state parse_key_exchange {\n"
        "        transition select(hdr.p4auth.msgType) {\n"
        f"            {int(KeyExchType.EAK_SALT1)}: parse_eak;\n"
        f"            {int(KeyExchType.EAK_SALT2)}: parse_eak;\n"
        f"            {int(KeyExchType.ADHKD_MSG1)}: parse_adhkd;\n"
        f"            {int(KeyExchType.ADHKD_MSG2)}: parse_adhkd;\n"
        f"            {int(KeyExchType.UPD_MSG1)}: parse_adhkd;\n"
        f"            {int(KeyExchType.UPD_MSG2)}: parse_adhkd;\n"
        f"            {int(KeyExchType.PORT_KEY_INIT)}: parse_keyctl;\n"
        f"            {int(KeyExchType.PORT_KEY_UPDATE)}: parse_keyctl;\n"
        "            default: accept;\n"
        "        }\n"
        "    }\n"
        "    state parse_eak { pkt.extract(hdr.eak); transition accept; }\n"
        "    state parse_adhkd { pkt.extract(hdr.adhkd); transition accept; }\n"
        "    state parse_keyctl { pkt.extract(hdr.keyctl); transition accept; }\n"
        "}\n\n")


def _emit_registers(out: io.StringIO, dataplane) -> None:
    out.write("/* -------- P4Auth state (10 register arrays, SVII) -------- */\n\n")
    registers = dataplane.switch.registers
    for name in registers.names():
        if not name.startswith("p4auth_"):
            continue
        register = registers.get(name)
        out.write(f"register<bit<{register.width_bits}>>({register.size}) "
                  f"{name};\n")
    out.write("\n")


def _emit_mapping_table(out: io.StringIO, dataplane) -> None:
    out.write("/* -------- Fig 15: reg_id_to_name_mapping -------- */\n\n")
    actions: List[str] = sorted(dataplane.mapping_table._actions)
    for action in actions:
        target = action.rsplit("_", 1)[0]
        kind = action.rsplit("_", 1)[1]
        out.write(f"action {action}() {{\n")
        if kind == "read":
            out.write(f"    {target}.read(meta.op_result, "
                      "(bit<32>)hdr.reg_op.index);\n")
        else:
            out.write(f"    {target}.write((bit<32>)hdr.reg_op.index, "
                      "hdr.reg_op.value);\n")
        out.write("    meta.op_ok = 1;\n}\n")
    out.write(
        "\ntable reg_id_to_name_mapping {\n"
        "    key = {\n"
        "        hdr.reg_op.regId: exact;\n"
        "        hdr.p4auth.msgType: exact;\n"
        "    }\n"
        "    actions = {\n")
    for action in actions:
        out.write(f"        {action};\n")
    out.write(
        "        NoAction;\n"
        "    }\n"
        f"    size = {dataplane.mapping_table.max_entries};\n"
        "    default_action = NoAction();\n"
        "}\n\n")
    out.write("/* entries installed at compile/provision time:\n")
    for entry in dataplane.mapping_table.entries():
        reg_id, op_type = entry.key
        kind = "readReq" if op_type == int(RegOpType.READ_REQ) else "writeReq"
        out.write(f"   ({reg_id}, {kind}) -> {entry.action}\n")
    out.write("*/\n\n")


def _emit_controls(out: io.StringIO) -> None:
    out.write("/* -------- verify-on-ingress / sign-on-egress -------- */\n\n")
    out.write(
        "extern void compute_digest<T>(in bit<64> key, in T data,\n"
        "                              out bit<32> digest);\n\n"
        "control P4AuthVerify(inout headers_t hdr, inout metadata_t meta,\n"
        "                     inout standard_metadata_t std_meta) {\n"
        "    apply {\n"
        "        if (hdr.p4auth.isValid()) {\n"
        "            bit<64> key;\n"
        "            if (std_meta.ingress_port == CPU_PORT) {\n"
        "                p4auth_keys_v0.read(key, 0); /* keyVer select */\n"
        "            } else {\n"
        "                p4auth_keys_v0.read(key,\n"
        "                    (bit<32>)std_meta.ingress_port);\n"
        "            }\n"
        "            bit<32> expected;\n"
        "            compute_digest(key, hdr, expected);\n"
        "            if (expected != hdr.p4auth.digest) {\n"
        "                meta.p4auth_fail = 1; /* nAck / alert / drop */\n"
        "            }\n"
        "            if (meta.p4auth_fail == 0 &&\n"
        f"                hdr.p4auth.hdrType == {int(HdrType.REGISTER_OP)}) {{\n"
        "                reg_id_to_name_mapping.apply();\n"
        "            }\n"
        "        }\n"
        "    }\n"
        "}\n\n"
        "control P4AuthSign(inout headers_t hdr, inout metadata_t meta,\n"
        "                   inout standard_metadata_t std_meta) {\n"
        "    apply {\n"
        "        if (hdr.p4auth.isValid()) {\n"
        "            bit<64> key;\n"
        "            p4auth_keys_v0.read(key,\n"
        "                (bit<32>)std_meta.egress_port);\n"
        "            compute_digest(key, hdr, hdr.p4auth.digest);\n"
        "        }\n"
        "    }\n"
        "}\n\n")


def generate_p4(dataplane, program_name: str = "p4auth") -> str:
    """Emit the P4-16 skeleton for a provisioned P4Auth data plane."""
    out = io.StringIO()
    out.write(f"/* {program_name}.p4 — generated by repro.dataplane.p4gen\n")
    out.write(" * P4Auth data plane (paper SVII), v1model architecture.\n")
    out.write(f" * switch: {dataplane.switch.name}, "
              f"ports: {dataplane.switch.num_ports}\n */\n\n")
    out.write("#include <core.p4>\n#include <v1model.p4>\n\n")
    out.write("#define ETHERTYPE_P4AUTH 0x88B5\n")
    out.write("#define CPU_PORT 0\n\n")
    out.write("header ethernet_t {\n"
              "    bit<48> dstAddr;\n"
              "    bit<48> srcAddr;\n"
              "    bit<16> etherType;\n"
              "}\n\n")
    out.write("struct metadata_t {\n"
              "    bit<1>  p4auth_fail;\n"
              "    bit<1>  op_ok;\n"
              "    bit<64> op_result;\n"
              "}\n\n")
    _emit_headers(out)
    _emit_registers(out, dataplane)
    _emit_mapping_table(out, dataplane)
    _emit_parser(out)
    _emit_controls(out)
    out.write("/* V1Switch(P4AuthParser(), verifyChecksum(),\n"
              " *          P4AuthVerify(), P4AuthSign(),\n"
              " *          computeChecksum(), deparser()) main; */\n")
    return out.getvalue()


def loc_estimate(source: str) -> int:
    """Non-blank, non-comment line count (compare with the paper's 400)."""
    count = 0
    in_block_comment = False
    for line in source.splitlines():
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("/*") and "*/" not in stripped:
            in_block_comment = True
            continue
        if not stripped or stripped.startswith(("//", "/*", "*")):
            continue
        count += 1
    return count
