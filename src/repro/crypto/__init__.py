"""Data-plane-feasible cryptographic primitives used by P4Auth.

Every primitive in this package is implementable on a PISA-style
programmable switch: the only operations used are AND, OR, XOR, rotate,
shift, and 32-bit addition (see :mod:`repro.crypto.ops`).  There are no
loops over secret data at "packet time" — round counts are compile-time
constants, mirroring how the P4 prototype unrolls them across pipeline
stages.

Exports:

- :func:`halfsiphash` / :class:`HalfSipHash` — keyed short-input PRF used
  as the HMAC algorithm on the BMv2 target (paper §VII).
- :func:`crc32` — the PRF used on the Tofino target and inside the KDF.
- :func:`dh_public`, :func:`dh_shared` — the modified Diffie-Hellman
  (DH' / DH'') that replaces exponentiation with AND and XOR (paper Fig 10).
- :func:`kdf` — TLS1.3-style Extract-and-Expand key derivation (Fig 13).
- :class:`XorShiftPrng` — deterministic PRNG modeling P4's ``random()``.
"""

from repro.crypto.crc import crc32, Crc32
from repro.crypto.halfsiphash import HalfSipHash, halfsiphash
from repro.crypto.kdf import Kdf, kdf, crc32_prf, halfsiphash_prf
from repro.crypto.modified_dh import dh_public, dh_shared, DhParameters
from repro.crypto.prng import XorShiftPrng

__all__ = [
    "crc32",
    "Crc32",
    "HalfSipHash",
    "halfsiphash",
    "Kdf",
    "kdf",
    "crc32_prf",
    "halfsiphash_prf",
    "dh_public",
    "dh_shared",
    "DhParameters",
    "XorShiftPrng",
]
