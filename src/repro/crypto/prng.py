"""Deterministic PRNG modeling the P4 ``random()`` extern.

P4Auth generates private DH randoms and salts with the target's ``random()``
primitive (paper §VII).  The paper itself cautions (§XI) that switch PRNGs
are not guaranteed cryptographically strong, which is exactly why the KDF
post-processes every derived secret.  We model the switch PRNG with a
seedable xorshift64* generator: deterministic (so simulations and tests are
reproducible) and of the same "fast but not cryptographic" character as the
hardware unit.
"""

from __future__ import annotations

from repro.crypto.ops import MASK64


class XorShiftPrng:
    """xorshift64* pseudo-random generator with an explicit seed."""

    _MULT = 0x2545F4914F6CDD1D

    def __init__(self, seed: int = 0x9E3779B97F4A7C15):
        if seed == 0:
            # xorshift has an all-zero fixed point; remap like hardware
            # seeding logic would.
            seed = 0x9E3779B97F4A7C15
        self._state = seed & MASK64

    def next64(self) -> int:
        """Next 64-bit pseudo-random value."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * self._MULT) & MASK64

    def next32(self) -> int:
        """Next 32-bit pseudo-random value."""
        return self.next64() >> 32

    def next_bits(self, bits: int) -> int:
        """Next pseudo-random value of the requested width (1..64 bits)."""
        if not 1 <= bits <= 64:
            raise ValueError("bits must be between 1 and 64")
        return self.next64() >> (64 - bits)

    def uniform(self) -> float:
        """Float in [0, 1) — used only by workload generators, never keys."""
        return self.next64() / float(1 << 64)

    def fork(self) -> "XorShiftPrng":
        """Derive an independent child stream (for per-entity generators)."""
        return XorShiftPrng(self.next64() ^ 0xA5A5A5A5A5A5A5A5)
