"""The restricted ALU operation set available on a PISA switch.

The paper's premise (§V, §VI) is that programmable data planes support
only simple arithmetic — AND, XOR, rotate — and no loops, multiplication,
modulo, or exponentiation.  All crypto in this package is written in terms
of these helpers so that the feasibility claim is checkable: if a primitive
only calls functions from this module, it fits the switch.

All helpers operate on fixed-width unsigned words and mask their results,
mirroring hardware registers that wrap silently.
"""

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def add32(a: int, b: int) -> int:
    """32-bit modular addition (hardware adders wrap)."""
    return (a + b) & MASK32


def xor32(a: int, b: int) -> int:
    """32-bit XOR."""
    return (a ^ b) & MASK32


def and32(a: int, b: int) -> int:
    """32-bit AND."""
    return (a & b) & MASK32


def or32(a: int, b: int) -> int:
    """32-bit OR."""
    return (a | b) & MASK32


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit word left by a compile-time constant amount."""
    amount &= 31
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32


def rotr32(value: int, amount: int) -> int:
    """Rotate a 32-bit word right by a compile-time constant amount."""
    return rotl32(value, 32 - (amount & 31))


def xor64(a: int, b: int) -> int:
    """64-bit XOR (modeled as two 32-bit lanes on Tofino)."""
    return (a ^ b) & MASK64


def and64(a: int, b: int) -> int:
    """64-bit AND (modeled as two 32-bit lanes on Tofino)."""
    return (a & b) & MASK64


def shr64(value: int, amount: int) -> int:
    """64-bit logical shift right."""
    return (value & MASK64) >> amount


def lo32(value: int) -> int:
    """Low 32-bit lane of a 64-bit word."""
    return value & MASK32


def hi32(value: int) -> int:
    """High 32-bit lane of a 64-bit word."""
    return (value >> 32) & MASK32


def concat32(high: int, low: int) -> int:
    """Assemble a 64-bit word from two 32-bit lanes."""
    return ((high & MASK32) << 32) | (low & MASK32)
