"""Key derivation function (paper §VI-D, Fig 13).

P4Auth's KDF follows TLS 1.3's HKDF *Extract-and-Expand* principle with a
pluggable 32-bit PRF.  It takes a 64-bit input secret (``K_in``, either the
pre-shared seed or a DH pre-master secret) and a 64-bit public salt, and
produces a 64-bit key (``K_auth``, ``K_local`` or ``K_port``).  Because the
PRF emits 32 bits, the expand phase runs the PRF twice and concatenates
(the paper: "the KDF executes the PRF twice to produce the final 64-bit
secret").

The prototype uses CRC32 as the PRF with rounds set to one; the PRF is a
constructor parameter so stronger functions (e.g., HalfSipHash) can be
plugged in, matching the paper's "pluggable primitives" discussion (§XI).
"""

from __future__ import annotations

from typing import Callable

from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash
from repro.crypto.ops import MASK64, concat32

# A PRF maps arbitrary bytes to a 32-bit unsigned integer.
Prf = Callable[[bytes], int]

_crc_engine = Crc32()
_hsh_engine = HalfSipHash()


def crc32_prf(data: bytes) -> int:
    """The prototype PRF: one round of CRC32 (paper §VII)."""
    return _crc_engine.compute(data)


def halfsiphash_prf(data: bytes) -> int:
    """Stronger pluggable PRF built from HalfSipHash with a fixed key."""
    return _hsh_engine.digest(0x5034417574685052, data)


class Kdf:
    """Extract-and-Expand key derivation with a pluggable 32-bit PRF.

    Extract: ``PRK = PRF(salt || K_in)`` condenses the input keying
    material into a pseudorandom key.  Expand: ``T(i) = PRF(PRK || T(i-1)
    || i)`` for i = 1, 2; the output key is ``T(1) || T(2)`` (64 bits).

    ``rounds`` repeats the whole extract-expand cycle, feeding each round's
    output back as ``K_in``; the prototype sets rounds to one.
    """

    def __init__(self, prf: Prf = crc32_prf, rounds: int = 1):
        if rounds < 1:
            raise ValueError("rounds must be at least 1")
        self.prf = prf
        self.rounds = rounds

    def derive(self, key_in: int, salt: int) -> int:
        """Derive a 64-bit key from a 64-bit secret and a 64-bit salt."""
        if not 0 <= key_in <= MASK64:
            raise ValueError("key_in must be a 64-bit unsigned integer")
        if not 0 <= salt <= MASK64:
            raise ValueError("salt must be a 64-bit unsigned integer")
        key = key_in
        for _ in range(self.rounds):
            prk = self.prf(salt.to_bytes(8, "little") + key.to_bytes(8, "little"))
            t1 = self.prf(prk.to_bytes(4, "little") + b"\x01")
            t2 = self.prf(prk.to_bytes(4, "little") + t1.to_bytes(4, "little") + b"\x02")
            key = concat32(t1, t2)
        return key


_DEFAULT = Kdf()


def kdf(key_in: int, salt: int) -> int:
    """Derive a 64-bit key using the prototype KDF (CRC32 PRF, one round)."""
    return _DEFAULT.derive(key_in, salt)
