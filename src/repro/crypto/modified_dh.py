"""Modified Diffie-Hellman exchange (DH' / DH'') from the paper's Fig 10.

The standard DH exchange needs modular exponentiation, which PISA switches
cannot express.  The modified algorithm (due to Jeon & Gil, adopted by
DH-AES-P4 and by P4Auth) replaces exponentiation with AND and XOR:

- ``DH'``  — public key generation:  ``PK = (G AND R) XOR (P AND R)``
- ``DH''`` — shared secret derivation: ``K = (PK_other AND R) XOR P``

Correctness: because AND distributes over XOR,

    DH''(P, R1, DH'(P, G, R2)) = (G AND R1 AND R2) XOR (P AND R1 AND R2) XOR P
                               = DH''(P, R2, DH'(P, G, R1))

so both endpoints derive the same pre-master secret without ever sending
their private randoms.  The paper (§XI) notes XOR-based constructions are
only safe when private keys are random and never reused; P4Auth therefore
pipes the pre-master secret through the KDF and rolls keys periodically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ops import MASK64, and64, xor64

# Default group parameters.  On the switch these are compile-time constants
# baked into the P4 binary; any odd-ish 64-bit constants work because the
# algebra is bitwise.  These values are arbitrary published nothing-up-my-
# sleeve digits (from pi and e).
DEFAULT_PRIME = 0x243F6A8885A308D3
DEFAULT_GENERATOR = 0xB7E151628AED2A6A


@dataclass(frozen=True)
class DhParameters:
    """Group parameters (P, G) shared by both endpoints at compile time."""

    prime: int = DEFAULT_PRIME
    generator: int = DEFAULT_GENERATOR

    def __post_init__(self) -> None:
        for name, value in (("prime", self.prime), ("generator", self.generator)):
            if not 0 < value <= MASK64:
                raise ValueError(f"{name} must be a nonzero 64-bit unsigned integer")


def dh_public(params: DhParameters, private_random: int) -> int:
    """DH': derive the public key to transmit from a private random R."""
    if not 0 <= private_random <= MASK64:
        raise ValueError("private_random must be a 64-bit unsigned integer")
    return xor64(and64(params.generator, private_random),
                 and64(params.prime, private_random))


def dh_shared(params: DhParameters, private_random: int, peer_public: int) -> int:
    """DH'': derive the shared pre-master secret from the peer's public key."""
    if not 0 <= private_random <= MASK64:
        raise ValueError("private_random must be a 64-bit unsigned integer")
    if not 0 <= peer_public <= MASK64:
        raise ValueError("peer_public must be a 64-bit unsigned integer")
    return xor64(and64(peer_public, private_random), params.prime)
