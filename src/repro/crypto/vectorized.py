"""Vectorized digest lanes: many messages per call, bit-identical tags.

PR 5 made batched issue ~800x sequential, which moved the bottleneck to
host-CPU crypto: the controller signs and verifies every C-DP message
with a scalar Python HalfSipHash (BMv2 flavor) or CRC32 (Tofino flavor).
This module provides *lane* implementations that tag thousands of
messages per call:

- :func:`digest_many` / :func:`digest_many_from_state` — HalfSipHash-c-d
  over a batch of messages under one key, reusing the PR 5
  ``key_schedule`` / ``digest_from_state`` split;
- :func:`crc32_many` / :func:`crc32_many_keyed` — table-driven reflected
  CRC-32 over a batch (keyed form prepends the 64-bit key exactly like
  :meth:`repro.crypto.crc.Crc32.compute_keyed`).

Two backends sit behind each function:

- **numpy** (when importable and not disabled): the 32-bit SipRound ALU
  ops and the CRC table step run across all message lanes at once as
  ``uint32`` array arithmetic.  Messages are grouped by byte length so
  every lane in a group walks the same block schedule — C-DP signing is
  the best case (every register-op request has identical material
  length).
- **pure stdlib** (fallback): a tight scalar loop that still amortizes
  the key schedule and attribute lookups.  Same tags, no dependency.

Bit-identity between both backends and the scalar
:class:`~repro.crypto.halfsiphash.HalfSipHash` /
:class:`~repro.crypto.crc.Crc32` classes is load-bearing: P4Auth's
integrity guarantee (Eqn. 4) holds only if controller and switch agree
on every tag bit, so the differential battery in
``tests/crypto/test_vector_differential.py`` pins all lanes against each
other and against independent references.

Set ``REPRO_NO_NUMPY=1`` to force the stdlib backend even when numpy is
installed (CI runs the differential battery both ways).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash

if os.environ.get("REPRO_NO_NUMPY"):
    np = None  # type: ignore[assignment]
else:
    try:  # pragma: no cover - exercised via the REPRO_NO_NUMPY CI leg
        import numpy as np  # type: ignore[import-untyped]
    except ImportError:  # pragma: no cover
        np = None  # type: ignore[assignment]

#: True when the numpy backend is active in this process.
HAVE_NUMPY = np is not None

_MASK32 = 0xFFFFFFFF

# Default CRC engine: IEEE reflected CRC-32, the Tofino hash-unit flavor.
_CRC_DEFAULT = Crc32()


def backend() -> str:
    """Name of the active vector backend (``"numpy"`` or ``"stdlib"``)."""
    return "numpy" if HAVE_NUMPY else "stdlib"


# ---------------------------------------------------------------------------
# HalfSipHash-c-d lanes
# ---------------------------------------------------------------------------


def digest_many(key: int, messages: Sequence[bytes],
                compression_rounds: int = 2, finalization_rounds: int = 4,
                force_stdlib: bool = False) -> List[int]:
    """HalfSipHash tags for every message under one 64-bit ``key``.

    Bit-identical to ``[HalfSipHash(c, d).digest(key, m) for m in
    messages]``, computed lane-parallel when numpy is available.
    """
    hasher = HalfSipHash(compression_rounds, finalization_rounds)
    return digest_many_from_state(hasher.key_schedule(key), messages,
                                  compression_rounds, finalization_rounds,
                                  force_stdlib=force_stdlib)


def digest_many_from_state(state: Tuple[int, int, int, int],
                           messages: Sequence[bytes],
                           compression_rounds: int = 2,
                           finalization_rounds: int = 4,
                           force_stdlib: bool = False) -> List[int]:
    """Tag a batch starting from a precomputed key schedule."""
    if not messages:
        return []
    if HAVE_NUMPY and not force_stdlib:
        return _digest_many_numpy(state, messages, compression_rounds,
                                  finalization_rounds)
    return _digest_many_stdlib(state, messages, compression_rounds,
                               finalization_rounds)


def _digest_many_stdlib(state: Tuple[int, int, int, int],
                        messages: Sequence[bytes], c: int,
                        d: int) -> List[int]:
    hasher = HalfSipHash(c, d)
    digest = hasher.digest_from_state  # hoist the bound method
    return [digest(state, message) for message in messages]


def _digest_many_numpy(state: Tuple[int, int, int, int],
                       messages: Sequence[bytes], c: int,
                       d: int) -> List[int]:
    out: List[int] = [0] * len(messages)
    # Group lanes by message length so every lane in a group shares one
    # block schedule; C-DP material is fixed-width, so signing a burst
    # lands in a single group.
    groups: dict = {}
    for position, message in enumerate(messages):
        groups.setdefault(len(message), []).append(position)
    for length, positions in groups.items():
        tags = _digest_group_numpy(state, [messages[p] for p in positions],
                                   length, c, d)
        for lane, position in enumerate(positions):
            out[position] = int(tags[lane])
    return out


def _sip_rounds_numpy(v0, v1, v2, v3, rounds: int):
    """SipRound over uint32 lane arrays; wrap-around is the dtype's."""
    for _ in range(rounds):
        v0 = v0 + v1
        v1 = (v1 << np.uint32(5)) | (v1 >> np.uint32(27))
        v1 = v1 ^ v0
        v0 = (v0 << np.uint32(16)) | (v0 >> np.uint32(16))
        v2 = v2 + v3
        v3 = (v3 << np.uint32(8)) | (v3 >> np.uint32(24))
        v3 = v3 ^ v2
        v0 = v0 + v3
        v3 = (v3 << np.uint32(7)) | (v3 >> np.uint32(25))
        v3 = v3 ^ v0
        v2 = v2 + v1
        v1 = (v1 << np.uint32(13)) | (v1 >> np.uint32(19))
        v1 = v1 ^ v2
        v2 = (v2 << np.uint32(16)) | (v2 >> np.uint32(16))
    return v0, v1, v2, v3


def _digest_group_numpy(state: Tuple[int, int, int, int],
                        messages: List[bytes], length: int, c: int, d: int):
    n = len(messages)
    if length:
        lanes = np.frombuffer(b"".join(messages),
                              dtype=np.uint8).reshape(n, length)
    else:
        lanes = np.zeros((n, 0), dtype=np.uint8)
    full = length - (length % 4)
    v0 = np.full(n, state[0], dtype=np.uint32)
    v1 = np.full(n, state[1], dtype=np.uint32)
    v2 = np.full(n, state[2], dtype=np.uint32)
    v3 = np.full(n, state[3], dtype=np.uint32)

    if full:
        blocks = np.ascontiguousarray(lanes[:, :full]).view("<u4")
        for column in range(full // 4):
            block = blocks[:, column]
            v3 = v3 ^ block
            v0, v1, v2, v3 = _sip_rounds_numpy(v0, v1, v2, v3, c)
            v0 = v0 ^ block

    # Final block: tail bytes little-endian plus the length byte on top.
    last = np.full(n, (length & 0xFF) << 24, dtype=np.uint32)
    for shift, column in enumerate(range(full, length)):
        last = last | (lanes[:, column].astype(np.uint32)
                       << np.uint32(8 * shift))
    v3 = v3 ^ last
    v0, v1, v2, v3 = _sip_rounds_numpy(v0, v1, v2, v3, c)
    v0 = v0 ^ last
    v2 = v2 ^ np.uint32(0xFF)
    v0, v1, v2, v3 = _sip_rounds_numpy(v0, v1, v2, v3, d)
    return v1 ^ v3


# ---------------------------------------------------------------------------
# CRC-32 lanes
# ---------------------------------------------------------------------------


def crc32_many(datas: Sequence[bytes], engine: Optional[Crc32] = None,
               force_stdlib: bool = False) -> List[int]:
    """Unkeyed CRC-32 of every message (matches ``Crc32.compute``)."""
    engine = engine or _CRC_DEFAULT
    return _crc32_many(datas, engine, engine.init, force_stdlib)


def crc32_many_keyed(key: int, datas: Sequence[bytes],
                     engine: Optional[Crc32] = None,
                     force_stdlib: bool = False) -> List[int]:
    """Keyed CRC-32 of every message (matches ``Crc32.compute_keyed``).

    The 8-byte little-endian key prefix is identical across lanes, so
    its CRC state is advanced once scalar and used as the lanes' shared
    initial state — the per-message work is data bytes only.
    """
    engine = engine or _CRC_DEFAULT
    if not 0 <= key < (1 << 64):
        raise ValueError("key must be a 64-bit unsigned integer")
    table = engine._table
    state = engine.init
    for byte in key.to_bytes(8, "little"):
        state = (state >> 8) ^ table[(state ^ byte) & 0xFF]
    return _crc32_many(datas, engine, state, force_stdlib)


def _crc32_many(datas: Sequence[bytes], engine: Crc32, init_state: int,
                force_stdlib: bool) -> List[int]:
    if not datas:
        return []
    if HAVE_NUMPY and not force_stdlib:
        return _crc32_many_numpy(datas, engine, init_state)
    return _crc32_many_stdlib(datas, engine, init_state)


def _crc32_many_stdlib(datas: Sequence[bytes], engine: Crc32,
                       init_state: int) -> List[int]:
    table = engine._table
    xor_out = engine.xor_out
    out: List[int] = []
    for data in datas:
        crc = init_state
        for byte in data:
            crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
        out.append(crc ^ xor_out)
    return out


def _crc32_many_numpy(datas: Sequence[bytes], engine: Crc32,
                      init_state: int) -> List[int]:
    table = np.asarray(engine._table, dtype=np.uint32)
    xor_out = np.uint32(engine.xor_out)
    out: List[int] = [0] * len(datas)
    groups: dict = {}
    for position, data in enumerate(datas):
        groups.setdefault(len(data), []).append(position)
    for length, positions in groups.items():
        n = len(positions)
        if length:
            lanes = np.frombuffer(b"".join(datas[p] for p in positions),
                                  dtype=np.uint8).reshape(n, length)
        else:
            lanes = np.zeros((n, 0), dtype=np.uint8)
        crc = np.full(n, init_state, dtype=np.uint32)
        for column in range(length):
            crc = (crc >> np.uint32(8)) ^ table[(crc ^ lanes[:, column])
                                                & np.uint32(0xFF)]
        crc = crc ^ xor_out
        for lane, position in enumerate(positions):
            out[position] = int(crc[lane])
    return out


__all__ = [
    "HAVE_NUMPY",
    "backend",
    "crc32_many",
    "crc32_many_keyed",
    "digest_many",
    "digest_many_from_state",
]
