"""Data-plane-feasible stream cipher (the §XI encryption extension).

The paper's discussion (§XI) notes P4Auth "can be extended to support
symmetric key encryption and decryption of C-DP and DP-DP communication
by deriving more symmetric keys from the master secret using KDF".  This
module provides the cipher half: HalfSipHash in counter mode.  Each
32-bit keystream word is ``HalfSipHash(k_enc, nonce || counter)``; the
plaintext is XORed with the keystream — only hash-unit and XOR
operations, so the construction fits the same switch constraints as the
digest path.

Nonce discipline is the caller's job (P4Auth uses the message sequence
number plus a direction bit, unique per key epoch); reusing a
(key, nonce) pair leaks the XOR of the two plaintexts, like any stream
cipher.
"""

from __future__ import annotations

from repro.crypto.halfsiphash import HalfSipHash
from repro.crypto.ops import MASK64

_engine = HalfSipHash()


def keystream(key: int, nonce: int, length: int) -> bytes:
    """``length`` bytes of keystream for (key, nonce)."""
    if not 0 <= key <= MASK64:
        raise ValueError("key must be a 64-bit unsigned integer")
    if not 0 <= nonce <= MASK64:
        raise ValueError("nonce must be a 64-bit unsigned integer")
    if length < 0:
        raise ValueError("length must be non-negative")
    out = bytearray()
    counter = 0
    while len(out) < length:
        block_input = nonce.to_bytes(8, "little") + counter.to_bytes(4, "little")
        word = _engine.digest(key, block_input)
        out += word.to_bytes(4, "little")
        counter += 1
    return bytes(out[:length])


def xor_crypt(key: int, nonce: int, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` (XOR with the keystream; involutive)."""
    stream = keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


def crypt_word(key: int, nonce: int, word: int, bits: int = 64) -> int:
    """Encrypt/decrypt a fixed-width register value (involutive)."""
    if not 0 <= word < (1 << bits):
        raise ValueError(f"word does not fit in {bits} bits")
    width = (bits + 7) // 8
    out = xor_crypt(key, nonce, word.to_bytes(width, "little"))
    return int.from_bytes(out, "little") & ((1 << bits) - 1)
