"""CRC32 — the hash/PRF available as a native primitive on Tofino.

The paper uses CRC32 in two places: as the digest algorithm on the Tofino
target (§VII) and as the PRF inside the KDF ("We implement our KDF with
CRC32 as PRF and set the rounds to one").  Tofino exposes CRC through its
hash distribution units, so using it costs hash units, not ALU stages —
which is why Table II shows hash-unit utilization jumping from 1.4% to
51.4% with P4Auth.

This is the standard reflected CRC-32 (polynomial 0xEDB88320), bit-exact
with ``zlib.crc32`` / IEEE 802.3, implemented table-driven the way a
switch's hash unit would realize it in fixed hardware.
"""

from __future__ import annotations

_POLY_REFLECTED = 0xEDB88320


def _build_table(poly: int) -> tuple:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


class Crc32:
    """Parameterizable reflected CRC-32 engine.

    The default parameters match IEEE CRC-32 (zlib).  Switch targets let
    programs pick custom polynomials; the parameter exists so tests can
    exercise that path.
    """

    def __init__(self, polynomial: int = _POLY_REFLECTED, init: int = 0xFFFFFFFF,
                 xor_out: int = 0xFFFFFFFF):
        self.polynomial = polynomial
        self.init = init
        self.xor_out = xor_out
        self._table = _build_table(polynomial)

    def compute(self, data: bytes) -> int:
        """CRC of ``data`` as a 32-bit unsigned integer."""
        crc = self.init
        for byte in data:
            crc = (crc >> 8) ^ self._table[(crc ^ byte) & 0xFF]
        return crc ^ self.xor_out

    def compute_keyed(self, key: int, data: bytes) -> int:
        """Keyed CRC as used for P4Auth digests on the Tofino target.

        CRC itself is unkeyed; the prototype prepends the 64-bit secret key
        to the hashed material, which is how the P4 program feeds the key
        into the hash unit's input crossbar.
        """
        if not 0 <= key < (1 << 64):
            raise ValueError("key must be a 64-bit unsigned integer")
        return self.compute(key.to_bytes(8, "little") + data)


_DEFAULT = Crc32()


def crc32(data: bytes) -> int:
    """IEEE CRC-32 of ``data`` (matches ``zlib.crc32``)."""
    return _DEFAULT.compute(data)
