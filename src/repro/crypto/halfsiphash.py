"""HalfSipHash — the keyed hash used for P4Auth digests on BMv2.

The paper (§VII, "Digest computation") selects HalfSipHash as the HMAC
algorithm because prior work showed it is implementable on Tofino with
AND/XOR/rotate/add and performs well for short inputs.  This module
implements HalfSipHash-c-d exactly as specified by Aumasson & Bernstein's
reference (the 32-bit-word variant of SipHash): a 64-bit key, 32-bit state
words, and a 32-bit tag.

The round function is written exclusively in terms of the restricted ALU
helpers in :mod:`repro.crypto.ops`, demonstrating data-plane feasibility.
Round counts ``c`` and ``d`` are constructor constants — on the switch they
are unrolled across pipeline stages, never looped at packet time.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.crypto.ops import MASK32, add32, rotl32, xor32

_V2_INIT = 0x6C796765
_V3_INIT = 0x74656462


class HalfSipHash:
    """HalfSipHash-c-d keyed pseudorandom function.

    Parameters
    ----------
    compression_rounds:
        Number of SipRounds per 4-byte message block (``c``; default 2).
    finalization_rounds:
        Number of SipRounds in finalization (``d``; default 4).
    """

    def __init__(self, compression_rounds: int = 2, finalization_rounds: int = 4):
        if compression_rounds < 1 or finalization_rounds < 1:
            raise ValueError("round counts must be positive")
        self.compression_rounds = compression_rounds
        self.finalization_rounds = finalization_rounds

    @staticmethod
    def _sip_round(v0: int, v1: int, v2: int, v3: int) -> Tuple[int, int, int, int]:
        v0 = add32(v0, v1)
        v1 = rotl32(v1, 5)
        v1 = xor32(v1, v0)
        v0 = rotl32(v0, 16)
        v2 = add32(v2, v3)
        v3 = rotl32(v3, 8)
        v3 = xor32(v3, v2)
        v0 = add32(v0, v3)
        v3 = rotl32(v3, 7)
        v3 = xor32(v3, v0)
        v2 = add32(v2, v1)
        v1 = rotl32(v1, 13)
        v1 = xor32(v1, v2)
        v2 = rotl32(v2, 16)
        return v0, v1, v2, v3

    def key_schedule(self, key: int) -> Tuple[int, int, int, int]:
        """Precompute the initial state words ``(v0, v1, v2, v3)`` for a key.

        The schedule depends only on the key, so callers signing or
        verifying many messages under one key (a pipelined batch of C-DP
        requests) can compute it once and reuse it via
        :meth:`digest_from_state` — same tag, fewer per-message XORs.
        """
        if not 0 <= key < (1 << 64):
            raise ValueError("key must be a 64-bit unsigned integer")
        k0 = key & MASK32
        k1 = (key >> 32) & MASK32
        return (k0, k1, xor32(_V2_INIT, k0), xor32(_V3_INIT, k1))

    def digest(self, key: int, message: bytes) -> int:
        """Compute the 32-bit HalfSipHash tag of ``message`` under ``key``.

        ``key`` is a 64-bit integer; its low 32 bits form k0 and high 32
        bits form k1, matching the little-endian reference layout.
        """
        return self.digest_from_state(self.key_schedule(key), message)

    def digest_from_state(self, state: Tuple[int, int, int, int],
                          message: bytes) -> int:
        """Tag ``message`` starting from a precomputed key schedule."""
        v0, v1, v2, v3 = state

        length = len(message)
        # Whole 4-byte little-endian blocks.
        full = length - (length % 4)
        for offset in range(0, full, 4):
            block = int.from_bytes(message[offset : offset + 4], "little")
            v3 = xor32(v3, block)
            for _ in range(self.compression_rounds):
                v0, v1, v2, v3 = self._sip_round(v0, v1, v2, v3)
            v0 = xor32(v0, block)

        # Final block: remaining bytes plus the length byte in the top lane.
        last = (length & 0xFF) << 24
        remainder = message[full:]
        for index, byte in enumerate(remainder):
            last |= byte << (8 * index)
        v3 = xor32(v3, last)
        for _ in range(self.compression_rounds):
            v0, v1, v2, v3 = self._sip_round(v0, v1, v2, v3)
        v0 = xor32(v0, last)

        v2 = xor32(v2, 0xFF)
        for _ in range(self.finalization_rounds):
            v0, v1, v2, v3 = self._sip_round(v0, v1, v2, v3)
        return xor32(v1, v3)

    def digest_words(self, key: int, words: Iterable[int], word_bits: int = 32) -> int:
        """Digest an iterable of fixed-width unsigned words.

        Convenience for data-plane callers, which hash header fields (PHV
        containers) rather than byte strings.  Each word is serialized
        little-endian at its declared width.
        """
        if word_bits % 8 != 0:
            raise ValueError("word_bits must be a multiple of 8")
        width = word_bits // 8
        buf = bytearray()
        for word in words:
            if not 0 <= word < (1 << word_bits):
                raise ValueError(f"word {word:#x} does not fit in {word_bits} bits")
            buf += word.to_bytes(width, "little")
        return self.digest(key, bytes(buf))


_DEFAULT = HalfSipHash()


def halfsiphash(key: int, message: bytes) -> int:
    """HalfSipHash-2-4 of ``message`` under 64-bit ``key`` (32-bit tag)."""
    return _DEFAULT.digest(key, message)
