"""Dependency-free asyncio HTTP/1.1 codec over ``ControllerService``.

FastAPI/uvicorn are not available in the pinned environment, so the
daemon speaks HTTP through ``asyncio.start_server`` directly.  The
codec is deliberately small: parse one request (request line, headers,
``Content-Length`` body), hand it to
:meth:`~repro.service.daemon.ControllerService.dispatch`, write the
response.  Connections are persistent (HTTP/1.1 keep-alive) until the
client sends ``Connection: close`` or the server drains.

All authentication, routing, and status-code policy lives in
``dispatch`` — this module never looks inside a request body.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

#: Parser limits: generous for a control API, hard caps for a daemon.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    408: "Request Timeout", 413: "Payload Too Large",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    503: "Service Unavailable", 505: "HTTP Version Not Supported",
}


class _BadRequest(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; None on clean EOF (client closed keep-alive)."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise _BadRequest(431, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest(400, f"malformed request line {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise _BadRequest(505, f"unsupported version {version}")
    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        if not line:
            raise _BadRequest(400, "connection closed mid-headers")
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise _BadRequest(431, "headers too large")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest(400, "malformed Content-Length")
    if length < 0:
        raise _BadRequest(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(413, f"body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    # Strip any query string: routing is exact-path.
    path = target.split("?", 1)[0]
    return method, path, headers, body


def _render_response(status: int, content_type: str, body: bytes,
                     close: bool) -> bytes:
    reason = REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n")
    if status == 503:
        head += "Retry-After: 1\r\n"
    head += ("Connection: close\r\n" if close
             else "Connection: keep-alive\r\n")
    return head.encode("latin-1") + b"\r\n" + body


class HttpServer:
    """Serve a :class:`ControllerService` over a TCP port."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Bind and listen; returns the bound port (useful with port 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    body = (f'{{"ok": false, "error": "{exc}"}}'
                            .encode("utf-8"))
                    writer.write(_render_response(
                        exc.status, "application/json", body, close=True))
                    await writer.drain()
                    return
                except asyncio.IncompleteReadError:
                    return
                if request is None:
                    return
                method, path, headers, body = request
                try:
                    status, ctype, payload = await self.service.dispatch(
                        method, path, body, headers)
                except Exception as exc:  # noqa: BLE001 - daemon boundary
                    status, ctype = 500, "application/json"
                    payload = (f'{{"ok": false, "error": '
                               f'"internal: {type(exc).__name__}"}}'
                               ).encode("utf-8")
                close = (headers.get("connection", "").lower() == "close"
                         or self.service.draining)
                writer.write(_render_response(status, ctype, payload,
                                              close=close))
                await writer.drain()
                if close:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


__all__ = ["HttpServer", "MAX_BODY_BYTES", "MAX_HEADER_BYTES",
           "MAX_REQUEST_LINE", "REASONS"]
