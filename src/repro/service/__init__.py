"""``repro.service`` — the long-running, sharded P4Auth controller daemon.

Everything before this package drives the controller from *inside* an
experiment run: build a deployment, issue a workload, tear it down.  A
production traffic-control system (ROADMAP north star) instead runs the
controller as a standing service that owns a switch fleet and serves
authenticated register operations to many concurrent clients.  This
package is that service front-end:

- :mod:`repro.service.shardmap` — a consistent-hash ownership map with
  bounded loads: every switch is owned by exactly one shard, adding a
  shard moves few switches, and no shard is assigned more than
  ``load_factor`` times its fair share of the fleet.
- :mod:`repro.service.shard` — a :class:`ShardWorker` per shard: one
  deterministic simulator + network + register-access stack for the
  owned switches, a bounded FIFO intake queue, and a
  :class:`~repro.runtime.batch.BatchController` issue engine capped at
  ``issue_window`` total in-flight requests (the shard's share of the
  §IV outstanding-request DoS budget).
- :mod:`repro.service.daemon` — :class:`ControllerService`: routes
  requests to owner shards, aggregates fleet status and Prometheus
  metrics, and performs graceful drain on shutdown.  Its
  :meth:`~ControllerService.dispatch` method is the single
  (authenticated) request surface shared by the HTTP codec and the
  in-process client.
- :mod:`repro.service.auth` — keyed-token request authentication built
  on the existing HalfSipHash/KDF primitives (no new crypto path; see
  DESIGN.md "Controller service").
- :mod:`repro.service.http` — a dependency-free asyncio HTTP/1.1 codec
  over ``dispatch`` (FastAPI is not available in the pinned
  environment, so the stdlib server is the default and only stack).
- :mod:`repro.service.client` — :class:`ServiceClient`, the in-process
  client used by tests, the load experiment
  (``cdp_service_load``), and the ``--smoke`` self-check.

Ordering guarantee: all requests for one switch land on its owner
shard's FIFO intake queue in arrival order, and the BatchController
never reorders a switch's FIFO — so the data plane's monotonic
``expected_seq`` replay defense sees in-order sequence numbers no
matter how many clients interleave.
"""

from repro.service.auth import RequestAuthenticator
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ControllerService, FleetConfig
from repro.service.http import HttpServer
from repro.service.shard import ShardOverload, ShardWorker
from repro.service.shardmap import ShardMap

__all__ = [
    "ControllerService",
    "FleetConfig",
    "HttpServer",
    "RequestAuthenticator",
    "ServiceClient",
    "ServiceError",
    "ShardMap",
    "ShardOverload",
    "ShardWorker",
]
