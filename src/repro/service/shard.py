"""One controller shard: a deterministic deployment behind an asyncio queue.

A :class:`ShardWorker` owns the switches its shard was assigned: its own
:class:`~repro.net.simulator.EventSimulator`, network, register-access
stack (any of the three runtime stacks), and a
:class:`~repro.runtime.batch.BatchController` issue engine.  Client
requests arrive through :meth:`submit` (synchronous, called from the
service's dispatch path) and are resolved as asyncio futures when the
wrapped stack decides an outcome.

Concurrency model
-----------------
Everything runs on one asyncio event loop.  The worker task alternates
between (a) topping the issue engine up from the FIFO intake queue and
(b) advancing the shard's *virtual* clock in small steps so in-flight
requests complete.  The simulator only advances while the shard has
work, so idle shards cost nothing and per-request latency is measured
in honest busy-time virtual seconds.

Ordering: the intake queue is FIFO and the BatchController never
reorders one switch's requests, so interleaved clients can never make a
switch's ``expected_seq`` replay defense observe out-of-order sequence
numbers.

Backpressure: the intake queue is bounded (``queue_depth``); a full
shard raises :class:`ShardOverload`, which the daemon maps to HTTP 503.
The issue engine itself is capped at ``issue_window`` total in-flight
requests — the shard's share of the §IV outstanding-request DoS budget
(kept far below the controller's ``outstanding_threshold`` so a shard
can never trip its own defense).  Fleet throughput therefore scales
with the number of shards, which is the point of the service.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.runtime.batch import BatchController
from repro.runtime.comparison import STACKS
from repro.runtime.p4runtime import P4RuntimeStack
from repro.runtime.plain import PlainController, PlainRegOpDataplane
from repro.store.recovery import (
    restore_dataplane,
    store_exists,
    warm_restart,
)

#: Buckets for per-request service latency (virtual seconds): window
#: queueing stacks a few RTTs on top of the Fig 18 ~1 ms round trip.
SERVICE_LATENCY_BUCKETS: Tuple[float, ...] = (
    5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
)

#: Virtual-time window for the parallel key bootstrap at build time.
BOOTSTRAP_DEADLINE_S = 10.0

OP_KINDS = ("read", "write", "rollover")


class ShardOverload(RuntimeError):
    """The shard's bounded intake queue is full (or the shard is
    draining); the daemon maps this to HTTP 503."""

    def __init__(self, shard_id: str, reason: str):
        super().__init__(f"shard {shard_id}: {reason}")
        self.shard_id = shard_id
        self.reason = reason


@dataclass
class ShardOp:
    """One queued operation and the future its caller awaits."""

    kind: str  # "read" | "write" | "rollover"
    switch: str
    reg_name: str = ""
    index: int = 0
    value: int = 0
    future: Optional[asyncio.Future] = None
    #: Shard virtual time at submission (clock only moves while busy).
    submitted_at: float = 0.0


@dataclass
class ShardStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    rollovers: int = 0
    #: Virtual time of the first issue / most recent terminal outcome.
    first_issue_at: Optional[float] = None
    last_done_at: Optional[float] = None
    #: Per-request busy-time latency samples (virtual seconds).
    latency_samples: List[float] = field(default_factory=list)

    @property
    def busy_s(self) -> float:
        """Virtual seconds between first issue and last outcome."""
        if self.first_issue_at is None or self.last_done_at is None:
            return 0.0
        return self.last_done_at - self.first_issue_at

    def percentile_s(self, pct: float) -> float:
        if not self.latency_samples:
            return math.nan
        ordered = sorted(self.latency_samples)
        rank = min(len(ordered) - 1,
                   max(0, int(pct / 100.0 * len(ordered))))
        return ordered[rank]


def build_shard_stack(stack_name: str, switches: Sequence[str], seed: int,
                      registers: Sequence[Tuple[str, int, int]],
                      issue_window: int, telemetry=None,
                      bootstrap: bool = True):
    """A fresh deployment of ``stack_name`` over the shard's switches.

    Returns ``(sim, net, stack, dataplanes)``.  Switches get the fleet's
    register schema; P4Auth switches additionally run the full local-key
    bootstrap (in parallel, inside the shard's virtual clock) before the
    shard accepts traffic.  C-DP traffic flows controller<->switch over
    per-switch control channels, so no inter-switch links are needed.

    ``bootstrap=False`` skips the P4Auth key negotiation: the caller is
    warm-restarting from a state directory and will reinstall journaled
    key material into both the controller and the (hardware-stand-in)
    dataplanes instead of negotiating fresh keys.
    """
    if stack_name not in STACKS:
        raise ValueError(f"stack must be one of {STACKS}")
    sim = EventSimulator(telemetry=telemetry)
    net = Network(sim)
    dataplanes: Dict[str, object] = {}
    for offset, name in enumerate(switches):
        switch = DataplaneSwitch(name, num_ports=2, seed=seed + offset)
        net.add_switch(switch)
        for reg_name, width, size in registers:
            switch.registers.define(reg_name, width, size)

    if stack_name == "P4Runtime":
        stack = P4RuntimeStack(net)
        for name in switches:
            stack.provision(net.switch(name))
    elif stack_name == "DP-Reg-RW":
        stack = PlainController(net)
        for name in switches:
            dataplane = PlainRegOpDataplane(net.switch(name)).install()
            for reg_name, _w, _s in registers:
                dataplane.map_register(reg_name)
            stack.provision(net.switch(name))
            dataplanes[name] = dataplane
    else:
        # The shard's issue window must stay far below the DoS
        # heuristic's budget — tripping our own defense would be a
        # self-inflicted outage.  Keep the default threshold and assert
        # the window fits under it with room for KMP chatter.
        stack = P4AuthController(net, seed=0xC0FFEE ^ seed)
        if issue_window * 2 > stack.outstanding_threshold:
            raise ValueError(
                f"issue_window={issue_window} would crowd the "
                f"outstanding-request DoS budget "
                f"({stack.outstanding_threshold}); add shards instead")
        done: List[object] = []
        for offset, name in enumerate(switches):
            dataplane = P4AuthDataplane(
                net.switch(name), k_seed=0x1000 + seed + offset).install()
            for reg_name, _w, _s in registers:
                dataplane.map_register(reg_name)
            stack.provision(dataplane)
            dataplanes[name] = dataplane
        if bootstrap:
            for name in switches:
                stack.kmp.local_key_init(name, on_done=done.append)
            sim.run(until=sim.now + BOOTSTRAP_DEADLINE_S)
            if len(done) != len(switches):
                raise RuntimeError(
                    f"key bootstrap incomplete: {len(done)}/{len(switches)}")
    return sim, net, stack, dataplanes


class ShardWorker:
    """One shard: bounded FIFO intake -> windowed issue -> futures."""

    def __init__(self, shard_id: str, switches: Sequence[str], *,
                 stack_name: str = "P4Auth", seed: int = 1,
                 registers: Sequence[Tuple[str, int, int]] =
                 (("target", 64, 16),),
                 max_in_flight: int = 8, issue_window: int = 32,
                 queue_depth: int = 1024, step_s: float = 0.002,
                 state_dir: Optional[str] = None, fsync: str = "batch",
                 snapshot_every: Optional[int] = 256,
                 metrics=None):
        if issue_window < 1:
            raise ValueError("issue_window must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.shard_id = shard_id
        self.switches = tuple(switches)
        self.stack_name = stack_name
        self.seed = seed
        self.registers = tuple(registers)
        self.max_in_flight = max_in_flight
        self.issue_window = issue_window
        self.queue_depth = queue_depth
        self.step_s = step_s
        #: Durable-state directory (P4Auth only; None: in-memory shard).
        self.state_dir = state_dir
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.recorder = None
        self.recovery_report = None
        self.recovered = False
        self.stats = ShardStats()
        self.sim = None
        self.net = None
        self.stack = None
        self.batch: Optional[BatchController] = None
        self.dataplanes: Dict[str, object] = {}
        self._pending: Deque[ShardOp] = deque()
        self._rollover_waiting: Dict[str, Deque[ShardOp]] = {}
        self._outstanding = 0
        self._draining = False
        self._task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        # Per-shard service metrics live in the *service* registry (the
        # shard sims deliberately stay un-instrumented so N virtual
        # clocks never fight over one tracer).  The journal/snapshot
        # stores share that registry: their metrics are wall-clock
        # host-side observations, not simulated time.
        self._metrics = metrics if metrics is not None and metrics.enabled \
            else None
        if metrics is not None and metrics.enabled:
            self._gauge_in_flight = metrics.gauge(
                "service_shard_in_flight", shard=shard_id)
            self._gauge_queue = metrics.gauge(
                "service_shard_queue_depth", shard=shard_id)
            self._gauge_switches = metrics.gauge(
                "service_shard_switches", shard=shard_id)
            self._counters = {
                kind: metrics.counter("service_requests_total",
                                      shard=shard_id, op=kind)
                for kind in OP_KINDS
            }
            self._counter_rejected = metrics.counter(
                "service_requests_rejected_total", shard=shard_id)
            self._counter_failed = metrics.counter(
                "service_request_failures_total", shard=shard_id)
            self._hists = {
                kind: metrics.histogram(
                    "service_request_seconds",
                    buckets=SERVICE_LATENCY_BUCKETS,
                    shard=shard_id, op=kind)
                for kind in OP_KINDS
            }
        else:
            self._gauge_in_flight = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Build the deployment (bootstrap included) and start serving.

        With a ``state_dir`` (P4Auth only), the shard is durable: a
        fresh directory journals the bootstrap as it happens; one that
        already holds a journal triggers a warm restart — key material
        and sequence horizons are replayed into the new controller, the
        simulated switches (stand-ins for hardware whose registers
        survived the crash) are re-seeded from the same journaled state,
        and any batch window open at crash time is reconciled with an
        authenticated register read before traffic resumes.
        """
        if self._task is not None:
            raise RuntimeError(f"shard {self.shard_id} already started")
        durable = self.state_dir is not None and self.stack_name == "P4Auth"
        warm = durable and store_exists(self.state_dir)
        self.sim, self.net, self.stack, self.dataplanes = build_shard_stack(
            self.stack_name, self.switches, self.seed, self.registers,
            self.issue_window, bootstrap=not warm)
        self.batch = BatchController(self.stack,
                                     max_in_flight=self.max_in_flight)
        if self.stack_name == "P4Auth":
            self.stack.kmp.on_abandoned.append(self._on_kmp_abandoned)
        if durable:
            self.recorder, self.recovery_report = warm_restart(
                self.state_dir, self.stack, batch=self.batch,
                shard_id=self.shard_id, fsync=self.fsync,
                snapshot_every=self.snapshot_every,
                metrics=self._metrics, shard=self.shard_id)
            self.recovered = warm
            if warm:
                self._settle_recovery()
        if self._gauge_in_flight is not None:
            self._gauge_switches.set(len(self.switches))
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name=f"shard-{self.shard_id}")

    def _settle_recovery(self) -> None:
        """Finish a warm restart before the shard accepts traffic.

        The journaled state was already poured into the controller; this
        re-seeds the hardware stand-ins, lets the reconciliation reads
        resolve in virtual time, and falls back to a fresh KMP bootstrap
        for any switch whose keys never became durable (a crash between
        provisioning and the journal's first fsync).
        """
        state = self.recovery_report.state
        for dataplane in self.dataplanes.values():
            restore_dataplane(dataplane, state)
        # Reconciliation reads were issued by warm_restart but deliver
        # only as the virtual clock advances (after the registers above
        # were restored — no packet outruns the restore).
        self.sim.run(until=self.sim.now + BOOTSTRAP_DEADLINE_S)
        missing = [name for name in self.switches
                   if not self.stack.keys.has_local_key(name)]
        if missing:
            done: List[object] = []
            for name in missing:
                self.stack.kmp.local_key_init(name, on_done=done.append)
            self.sim.run(until=self.sim.now + BOOTSTRAP_DEADLINE_S)
            if len(done) != len(missing):
                raise RuntimeError(
                    f"post-recovery bootstrap incomplete: "
                    f"{len(done)}/{len(missing)}")

    async def stop(self) -> None:
        """Graceful drain: stop intake, finish queued work, exit."""
        if self._task is None:
            return
        self._draining = True
        self._wake.set()
        await self._task
        self._task = None
        if self.recorder is not None:
            # Drained: snapshot the final state so the next start
            # replays (almost) nothing, then seal the journal.
            self.recorder.snapshot()
            self.recorder.detach()
            self.recorder.journal.close()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def idle(self) -> bool:
        return not self._pending and self._outstanding == 0

    # ------------------------------------------------------------------
    # intake (synchronous: the daemon calls this from dispatch)
    # ------------------------------------------------------------------

    def submit(self, op: ShardOp) -> asyncio.Future:
        """Enqueue one op; returns the future its caller awaits.

        Raises :class:`ShardOverload` when the bounded queue is full or
        the shard is draining — callers must not retry blindly.
        """
        if self._task is None or self._draining:
            self.stats.rejected += 1
            if self._gauge_in_flight is not None:
                self._counter_rejected.inc()
            raise ShardOverload(self.shard_id, "draining")
        if len(self._pending) + self._outstanding >= self.queue_depth:
            self.stats.rejected += 1
            if self._gauge_in_flight is not None:
                self._counter_rejected.inc()
            raise ShardOverload(
                self.shard_id,
                f"queue full ({self.queue_depth} ops)")
        op.future = asyncio.get_running_loop().create_future()
        op.submitted_at = self.sim.now
        self.stats.submitted += 1
        self._pending.append(op)
        if self._gauge_in_flight is not None:
            self._counters[op.kind].inc()
            self._gauge_queue.set(len(self._pending))
        self._wake.set()
        return op.future

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            if self.idle:
                if self._draining:
                    break
                self._wake.clear()
                await self._wake.wait()
                continue
            self._top_up()
            if self._outstanding:
                # Advance the shard's virtual clock one step; completion
                # callbacks fire inside run() and refill the window.
                self.sim.run(until=self.sim.now + self.step_s)
            # Yield so clients observe resolved futures and enqueue
            # follow-up work before the next step.
            await asyncio.sleep(0)
        if self._gauge_in_flight is not None:
            self._gauge_in_flight.set(0)
            self._gauge_queue.set(0)

    def _top_up(self) -> None:
        """Issue from the FIFO head while the window has room.

        Register ops drain through :meth:`BatchController.submit_many`
        so a refill becomes per-switch bursts the stack can sign with
        one ``sign_many`` call (the vectorized digest lane at scale).
        A rollover op flushes the accumulated run first — everything
        submitted before it still issues before it, preserving the FIFO
        guarantee interleaved clients rely on.
        """
        reg_ops: List[ShardOp] = []
        while self._pending and self._outstanding < self.issue_window:
            op = self._pending.popleft()
            self._outstanding += 1
            if self.stats.first_issue_at is None:
                self.stats.first_issue_at = self.sim.now
            if op.kind == "rollover":
                self._flush_reg_ops(reg_ops)
                reg_ops = []
                self._issue_rollover(op)
            else:
                reg_ops.append(op)
        self._flush_reg_ops(reg_ops)
        if self._gauge_in_flight is not None:
            self._gauge_in_flight.set(self._outstanding)
            self._gauge_queue.set(len(self._pending))

    def _flush_reg_ops(self, reg_ops: List[ShardOp]) -> None:
        if not reg_ops:
            return
        self.batch.submit_many([
            (op.kind, op.switch, op.reg_name, op.index, op.value,
             lambda ok, value, op=op: self._op_done(op, ok, value))
            for op in reg_ops])

    def _issue_rollover(self, op: ShardOp) -> None:
        waiting = self._rollover_waiting.setdefault(op.switch, deque())
        waiting.append(op)
        self.stack.kmp.local_key_update(
            op.switch,
            on_done=lambda _record, sw=op.switch:
                self._rollover_done(sw, True))

    def _rollover_done(self, switch: str, ok: bool) -> None:
        waiting = self._rollover_waiting.get(switch)
        if not waiting:
            return
        op = waiting.popleft()
        if ok:
            self.stats.rollovers += 1
        version = (self.stack.keys.local_key_version(switch)
                   if ok else 0)
        self._op_done(op, ok, version)

    def _on_kmp_abandoned(self, failure) -> None:
        """A rollover exchange hit its retry cap: fail the waiting op
        instead of leaving its future pending forever."""
        if failure.op == "local_update":
            self._rollover_done(failure.switch, False)

    def _op_done(self, op: ShardOp, ok: bool, value: int) -> None:
        self._outstanding -= 1
        self.stats.completed += 1 if ok else 0
        self.stats.failed += 0 if ok else 1
        self.stats.last_done_at = self.sim.now
        latency = self.sim.now - op.submitted_at
        self.stats.latency_samples.append(latency)
        if self._gauge_in_flight is not None:
            self._hists[op.kind].observe(latency)
            self._gauge_in_flight.set(self._outstanding)
            if not ok:
                self._counter_failed.inc()
        if op.future is not None and not op.future.done():
            op.future.set_result((ok, value))
        # Refill immediately so the window stays full mid-step.
        self._top_up()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        status = {
            "shard": self.shard_id,
            "stack": self.stack_name,
            "switches": len(self.switches),
            "queued": len(self._pending),
            "in_flight": self._outstanding,
            "issue_window": self.issue_window,
            "queue_depth": self.queue_depth,
            "submitted": self.stats.submitted,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "rejected": self.stats.rejected,
            "rollovers": self.stats.rollovers,
            "busy_virtual_s": self.stats.busy_s,
            "draining": self._draining,
        }
        if self.recorder is not None:
            report = self.recovery_report
            status["store"] = {
                "state_dir": self.state_dir,
                "fsync": self.fsync,
                "journal_records": self.recorder.journal.next_lsn,
                "journal_lag": self.recorder.journal.lag,
                "torn_records": self.recorder.journal.torn_records,
                "recovered": self.recovered,
                "recovery_s": report.duration_s,
                "replayed_records": report.replayed_records,
                "snapshot_used": report.snapshot_used,
                "windows_reconciled": report.windows_reconciled,
            }
        return status


__all__ = [
    "BOOTSTRAP_DEADLINE_S",
    "OP_KINDS",
    "SERVICE_LATENCY_BUCKETS",
    "ShardOp",
    "ShardOverload",
    "ShardStats",
    "ShardWorker",
    "build_shard_stack",
]
