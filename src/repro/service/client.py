"""In-process client for the controller service.

:class:`ServiceClient` speaks to a :class:`~repro.service.daemon.ControllerService`
through the same :meth:`~repro.service.daemon.ControllerService.dispatch`
surface the HTTP codec uses — every request is token-signed and walks
the full auth + routing + backpressure path, without sockets.  It is
what the ``cdp_service_load`` experiment, the test suites, and the
``repro serve --smoke`` self-check drive.

Raises :class:`ServiceError` (carrying the HTTP status) for any
non-2xx response, so callers handle 503 backpressure explicitly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.service.auth import TOKEN_HEADER


class ServiceError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Token-signing in-process client over ``service.dispatch``."""

    def __init__(self, service, secret: Optional[str] = None):
        self.service = service
        # The deployment secret is shared out of band; tests and the
        # load driver read it from the service config.
        from repro.service.auth import RequestAuthenticator
        self.auth = (service.auth if secret is None
                     else RequestAuthenticator(secret))

    async def _request(self, method: str, path: str,
                       payload: Optional[dict] = None) -> dict:
        body = (json.dumps(payload, sort_keys=True).encode("utf-8")
                if payload is not None else b"")
        headers = {TOKEN_HEADER: self.auth.token(method, path, body)}
        status, ctype, raw = await self.service.dispatch(
            method, path, body, headers)
        document = (json.loads(raw.decode("utf-8"))
                    if ctype.startswith("application/json") and raw
                    else {"text": raw.decode("utf-8")})
        if status >= 300:
            raise ServiceError(status, document.get("error", "unknown"))
        return document

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    async def read(self, switch: str, register: str = "target",
                   index: int = 0) -> dict:
        return await self._request("POST", "/v1/read", {
            "switch": switch, "register": register, "index": index})

    async def write(self, switch: str, register: str, index: int,
                    value: int) -> dict:
        return await self._request("POST", "/v1/write", {
            "switch": switch, "register": register, "index": index,
            "value": value})

    async def batch(self, ops: List[Dict[str, object]]) -> dict:
        """Submit a FIFO list of ``{kind, switch, register, index[, value]}``."""
        return await self._request("POST", "/v1/batch", {"ops": ops})

    async def rollover(self, switch: Optional[str] = None) -> dict:
        payload = {} if switch is None else {"switch": switch}
        return await self._request("POST", "/v1/rollover", payload)

    async def status(self) -> dict:
        return await self._request("GET", "/fleet/status")

    async def metrics(self) -> str:
        document = await self._request("GET", "/metrics")
        return document["text"]

    async def healthz(self) -> dict:
        return await self._request("GET", "/healthz")


__all__ = ["ServiceClient", "ServiceError"]
