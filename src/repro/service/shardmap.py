"""Consistent-hash switch ownership with bounded loads.

The service shards its switch fleet across N controller workers.  Two
properties matter operationally:

- **Stability** — re-sharding (adding/removing a worker) must move as
  few switches as possible, because a moved switch's controller-side
  sequence counter and key state move with it (ROADMAP items 3/4 build
  on this map for 10k-switch fleets and durable restart).
- **Balance** — a shard's throughput is capped by its issue window (its
  share of the §IV outstanding-request DoS budget), so fleet throughput
  is set by the *most loaded* shard.  Plain consistent hashing leaves a
  statistical imbalance; the assignment therefore applies the
  bounded-load refinement: no shard may own more than ``load_factor``
  times its fair share, overflow walks to the next shard on the ring.

Hashing is ``sha256`` over the token string — stable across processes
and Python versions (``hash()`` is salted per process), and explicitly
*not* key material: ownership is public routing metadata, so nothing
here touches the P4Auth crypto path.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from math import ceil
from typing import Dict, List, Sequence

#: Virtual nodes per shard on the ring.  More points = smoother raw
#: distribution before the bounded-load pass.
DEFAULT_REPLICAS = 160

#: Default bounded-load factor: no shard owns more than 1.15x its fair
#: share of the fleet.
DEFAULT_LOAD_FACTOR = 1.15


def _hash_token(token: str) -> int:
    """64-bit ring position for a token (stable across processes)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


class ShardMap:
    """Consistent-hash ring mapping switch names to shard ids."""

    def __init__(self, shard_ids: Sequence[str],
                 replicas: int = DEFAULT_REPLICAS):
        if not shard_ids:
            raise ValueError("need at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids in {list(shard_ids)}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_ids = tuple(shard_ids)
        self.replicas = replicas
        ring = sorted(
            (_hash_token(f"{shard}#{replica}"), shard)
            for shard in shard_ids
            for replica in range(replicas)
        )
        self._points: List[int] = [point for point, _ in ring]
        self._ring_owners: List[str] = [owner for _, owner in ring]

    # ------------------------------------------------------------------
    # raw ring lookup
    # ------------------------------------------------------------------

    def ring_owner(self, switch: str) -> str:
        """The unbounded consistent-hash owner (ignores load caps)."""
        position = bisect_right(self._points, _hash_token(switch))
        return self._ring_owners[position % len(self._ring_owners)]

    # ------------------------------------------------------------------
    # bounded-load assignment
    # ------------------------------------------------------------------

    def capacity(self, num_switches: int,
                 load_factor: float = DEFAULT_LOAD_FACTOR) -> int:
        """Per-shard ownership cap for a fleet of ``num_switches``."""
        if load_factor < 1.0:
            raise ValueError("load_factor must be >= 1.0")
        fair = num_switches / len(self.shard_ids)
        return max(1, ceil(fair * load_factor))

    def assign(self, switches: Sequence[str],
               load_factor: float = DEFAULT_LOAD_FACTOR
               ) -> Dict[str, List[str]]:
        """Deterministic bounded-load assignment of the whole fleet.

        Switches are placed in sorted-name order (a pure function of the
        inputs): each lands on its ring owner unless that shard is at
        capacity, in which case it walks clockwise to the next shard
        with room.  Every shard id appears in the result, possibly with
        an empty list.
        """
        if len(set(switches)) != len(switches):
            raise ValueError("duplicate switch names")
        cap = self.capacity(len(switches), load_factor)
        owned: Dict[str, List[str]] = {shard: [] for shard in self.shard_ids}
        size = len(self._points)
        for switch in sorted(switches):
            position = bisect_right(self._points, _hash_token(switch))
            for step in range(size):
                owner = self._ring_owners[(position + step) % size]
                if len(owned[owner]) < cap:
                    owned[owner].append(switch)
                    break
            else:  # pragma: no cover - cap * shards >= fleet by math
                raise RuntimeError("no shard with spare capacity")
        return owned

    @staticmethod
    def moved(before: Dict[str, List[str]],
              after: Dict[str, List[str]]) -> int:
        """How many switches changed owner between two assignments."""
        owner_before = {sw: shard for shard, sws in before.items()
                        for sw in sws}
        owner_after = {sw: shard for shard, sws in after.items()
                       for sw in sws}
        return sum(1 for sw, shard in owner_after.items()
                   if owner_before.get(sw) != shard)

    def __repr__(self) -> str:
        return (f"ShardMap(shards={len(self.shard_ids)}, "
                f"replicas={self.replicas})")


__all__ = ["DEFAULT_LOAD_FACTOR", "DEFAULT_REPLICAS", "ShardMap"]
