"""``python -m repro serve`` — run the controller daemon.

    python -m repro serve                       # defaults: m=25, 2 shards
    python -m repro serve --m 100 --shards 4 --port 9418
    python -m repro serve --stack DP-Reg-RW --run-for 30
    python -m repro serve --smoke               # in-process self-check

``--smoke`` skips the socket entirely: it stands the daemon up
in-process, drives read/write/batch/rollover/status/metrics through
:class:`~repro.service.client.ServiceClient`, asserts a clean drain on
shutdown, and exits 0/1 — the CI service-smoke job.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.service.daemon import ControllerService, FleetConfig
from repro.service.http import HttpServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the sharded P4Auth controller daemon.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9418,
                        help="TCP port (0 picks a free port)")
    parser.add_argument("--stack", default="P4Auth",
                        choices=["P4Auth", "DP-Reg-RW", "P4Runtime"])
    parser.add_argument("--m", type=int, default=25,
                        help="fleet size (switches sw0..sw<m-1>)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--regions", type=int, default=1,
                        help="administrative regions (contiguous switch "
                             "blocks; per-region KMP telemetry)")
    parser.add_argument("--max-in-flight", type=int, default=8,
                        help="per-switch pipelining window")
    parser.add_argument("--issue-window", type=int, default=32,
                        help="per-shard total in-flight cap")
    parser.add_argument("--queue-depth", type=int, default=1024,
                        help="per-shard intake queue bound (503 beyond)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--state-dir", default=None,
                        help="durable-state root (P4Auth only): per-shard "
                             "write-ahead journals + snapshots; restarting "
                             "with the same directory warm-restarts the "
                             "fleet's keys and sequence state")
    parser.add_argument("--fsync", default="batch",
                        choices=["always", "batch", "never"],
                        help="journal fsync policy (batch: group-commit "
                             "on durable records)")
    parser.add_argument("--snapshot-every", type=int, default=256,
                        metavar="RECORDS",
                        help="compact the journal into a snapshot every "
                             "N records (0 disables auto-snapshots)")
    parser.add_argument("--secret", default=None,
                        help="deployment auth secret (default: the dev "
                             "secret; never use the default in earnest)")
    parser.add_argument("--run-for", type=float, default=None,
                        metavar="SECONDS",
                        help="serve for a fixed wall-clock duration, then "
                             "drain and exit (useful for CI)")
    parser.add_argument("--smoke", action="store_true",
                        help="in-process self-check (no sockets); exit "
                             "0 iff every endpoint works and drain is "
                             "clean")
    return parser


def config_from_args(args) -> FleetConfig:
    kwargs = dict(stack=args.stack, m=args.m, shards=args.shards,
                  regions=args.regions,
                  max_in_flight=args.max_in_flight,
                  issue_window=args.issue_window,
                  queue_depth=args.queue_depth, seed=args.seed,
                  state_dir=args.state_dir, fsync=args.fsync,
                  snapshot_every=args.snapshot_every or None)
    if args.secret is not None:
        kwargs["auth_secret"] = args.secret
    return FleetConfig(**kwargs)


async def _serve(args) -> int:
    service = ControllerService(config_from_args(args))
    await service.start()
    server = HttpServer(service, host=args.host, port=args.port)
    port = await server.start()
    config = service.config
    print(f"# repro.service listening on http://{args.host}:{port}")
    print(f"# fleet: stack={config.stack} m={config.m} "
          f"shards={config.shards} regions={config.regions} "
          f"issue_window={config.issue_window} "
          f"queue_depth={config.queue_depth}")
    if config.state_dir is not None:
        recovered = service.status()["fleet"]["recovered_shards"]
        print(f"# durable state: {config.state_dir} "
              f"(fsync={config.fsync}, "
              f"recovered {recovered}/{config.shards} shards)")
    for shard_id in config.shard_ids:
        owned = len(service.assignment[shard_id])
        print(f"#   {shard_id}: {owned} switches")
    print("# authenticated endpoints expect X-P4Auth-Token "
          "(see DESIGN.md 'Controller service')")

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    if args.run_for is not None:
        loop.call_later(args.run_for, stop.set)
    await stop.wait()
    print("# draining...")
    await server.stop()
    await service.stop()
    status = service.status()["fleet"]
    print(f"# drained: {status['completed']} completed, "
          f"{status['failed']} failed, {status['rejected']} rejected")
    return 0 if service.idle else 1


async def _smoke(args) -> int:
    """Drive every endpoint in-process; assert a clean drain."""
    from repro.service.client import ServiceClient, ServiceError

    service = ControllerService(config_from_args(args))
    await service.start()
    client = ServiceClient(service)
    failures = []

    def check(label: str, condition: bool) -> None:
        print(f"# {'ok  ' if condition else 'FAIL'} {label}")
        if not condition:
            failures.append(label)

    switches = service.config.switch_names
    reg = service.config.registers[0][0]
    health = await client.healthz()
    check("healthz", health.get("ok") is True)
    for offset, name in enumerate(switches[:8]):
        result = await client.write(name, reg, offset % 4, 0xBEE0 + offset)
        check(f"write {name}", result["ok"])
    for offset, name in enumerate(switches[:8]):
        result = await client.read(name, reg, offset % 4)
        check(f"read {name}",
              result["ok"] and result["value"] == 0xBEE0 + offset)
    batch = await client.batch([
        {"kind": "write", "switch": switches[0], "register": reg,
         "index": 9, "value": 7},
        {"kind": "read", "switch": switches[0], "register": reg,
         "index": 9},
    ])
    check("batch FIFO read-your-write",
          batch["results"][1].get("value") == 7)
    if service.config.stack == "P4Auth":
        rolled = await client.rollover(switches[0])
        check("rollover", rolled["ok"])
    status = await client.status()
    check("status shard table",
          len(status["shards"]) == service.config.shards)
    check("status region table",
          len(status["regions"]) == service.config.regions)
    metrics = await client.metrics()
    check("metrics exposition",
          "service_requests_total" in metrics
          and "service_shard_in_flight" in metrics)
    check("region KMP telemetry",
          "kmp_region_bootstrap_total" in metrics)
    try:
        await client.read("not-a-switch")
        check("unknown switch -> 404", False)
    except ServiceError as exc:
        check("unknown switch -> 404", exc.status == 404)
    bad = ServiceClient(service, secret="wrong-secret")
    try:
        await bad.status()
        check("bad token -> 401", False)
    except ServiceError as exc:
        check("bad token -> 401", exc.status == 401)

    await service.stop()
    check("clean drain", service.idle)
    check("zero failures",
          service.status()["fleet"]["failed"] == 0)
    if failures:
        print(f"# smoke FAILED: {failures}", file=sys.stderr)
        return 1
    print("# smoke passed")
    return 0


def cmd_serve(argv) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        return asyncio.run(_smoke(args))
    return asyncio.run(_serve(args))


__all__ = ["build_parser", "cmd_serve", "config_from_args"]
