"""Keyed-token authentication for service requests.

The service's endpoints mutate authenticated data-plane state, so the
HTTP surface itself must not become the unauthenticated path around the
paper's C-DP defenses.  Every request (except the liveness and metrics
scrape endpoints) carries an ``X-P4Auth-Token`` header: a HalfSipHash
tag over the canonical request bytes under a key derived from the
deployment secret with the existing KDF.

Deliberately *reuses* the repo's crypto primitives instead of opening a
second crypto path (the P4BID/IFC motivation in ISSUE 6): the token key
is produced by :func:`repro.crypto.kdf.kdf` with the HalfSipHash PRF,
and the tag by :class:`repro.crypto.halfsiphash.HalfSipHash` — the same
constructions the §VII digest rule trusts.  The service key is derived
key material and is handled like one: never logged, never serialized
into status/metrics responses.

This authenticates *clients to the service* (transport-level); the
service-to-switch hop keeps the full per-message Eqn 4 digest +
sequence-number machinery of the wrapped stack — nothing here weakens
or replaces it.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.halfsiphash import HalfSipHash
from repro.crypto.kdf import Kdf, halfsiphash_prf

#: Domain-separation salt for deriving the token key from the secret.
TOKEN_KEY_SALT = 0x53765631  # "SvV1"

#: The request header carrying the token.
TOKEN_HEADER = "x-p4auth-token"


def canonical_request(method: str, path: str, body: bytes) -> bytes:
    """The exact byte string a token signs: method, path, body."""
    return (method.upper().encode("ascii") + b"\n"
            + path.encode("utf-8") + b"\n" + body)


class RequestAuthenticator:
    """Sign and verify service requests under a shared deployment secret."""

    def __init__(self, secret: str):
        if not secret:
            raise ValueError("service secret must be non-empty")
        # Compress the free-form secret into the KDF's 64-bit key-in
        # domain, then derive the per-purpose token key through the same
        # keyed-PRF KDF the KMP uses for session keys.
        seed = int.from_bytes(
            hashlib.sha256(secret.encode("utf-8")).digest()[:8], "big")
        self._key = Kdf(prf=halfsiphash_prf).derive(seed, TOKEN_KEY_SALT)
        self._hash = HalfSipHash()

    def token(self, method: str, path: str, body: bytes = b"") -> str:
        """The hex token a client attaches to one request."""
        tag = self._hash.digest(self._key, canonical_request(
            method, path, body))
        return f"{tag:08x}"

    def verify(self, method: str, path: str, body: bytes,
               token: str) -> bool:
        """Constant-time check of a presented token."""
        if not token:
            return False
        expected = self.token(method, path, body)
        return hmac.compare_digest(expected, token.strip().lower())


__all__ = ["RequestAuthenticator", "TOKEN_HEADER", "TOKEN_KEY_SALT",
           "canonical_request"]
