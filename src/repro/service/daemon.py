"""The controller service: shard routing, fleet ops, status, metrics.

:class:`ControllerService` is the long-running daemon the ROADMAP's
open item 1 calls for.  It owns a named switch fleet, partitions it
across N :class:`~repro.service.shard.ShardWorker` instances with the
bounded-load consistent-hash :class:`~repro.service.shardmap.ShardMap`,
and exposes one request surface, :meth:`dispatch`, consumed by both the
asyncio HTTP codec (:mod:`repro.service.http`) and the in-process
:class:`~repro.service.client.ServiceClient` — so the authenticated
path is identical no matter how a request arrives.

Endpoints (all JSON unless noted):

=====================  ======================================================
``POST /v1/read``      ``{switch, register, index}`` -> ``{ok, value}``
``POST /v1/write``     ``{switch, register, index, value}`` -> ``{ok}``
``POST /v1/batch``     ``{ops: [...]}`` -> ``{results: [...]}`` (FIFO order)
``POST /v1/rollover``  ``{switch?}`` -> per-switch key versions (P4Auth)
``GET /fleet/status``  shard table + per-region telemetry + aggregates
``GET /metrics``       Prometheus text (unauthenticated scrape endpoint)
``GET /healthz``       liveness probe (unauthenticated)
=====================  ======================================================

Status codes: 401 bad/missing token, 400 malformed request, 404 unknown
route/switch, 503 shard overload or draining (``Retry-After`` hint).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.kmp import KMP_CONVERGENCE_BUCKETS
from repro.store.journal import FSYNC_POLICIES
from repro.runtime.comparison import STACKS
from repro.service.auth import RequestAuthenticator, TOKEN_HEADER
from repro.service.shard import ShardOp, ShardOverload, ShardWorker
from repro.service.shardmap import (
    DEFAULT_LOAD_FACTOR,
    DEFAULT_REPLICAS,
    ShardMap,
)
from repro.telemetry import Telemetry

#: Development default; real deployments pass their own secret.
DEFAULT_SECRET = "p4auth-service-dev"

JSON_TYPE = "application/json"
#: Prometheus text exposition content type.
METRICS_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Caps a single /v1/batch request (backpressure belongs to the shard
#: queues; this just bounds one request's memory).
MAX_BATCH_OPS = 4096


@dataclass(frozen=True)
class FleetConfig:
    """Everything that defines one service deployment."""

    stack: str = "P4Auth"
    #: Fleet size; switches are named ``sw0 .. sw<m-1>``.
    m: int = 25
    shards: int = 2
    #: Administrative regions (contiguous switch-index blocks ``r0 ..``);
    #: purely an ownership/telemetry axis — shard routing is unchanged.
    regions: int = 1
    registers: Tuple[Tuple[str, int, int], ...] = (("target", 64, 16),)
    #: Per-switch pipelining window inside each shard's issue engine.
    max_in_flight: int = 8
    #: Per-shard cap on total in-flight requests (DoS-budget share).
    issue_window: int = 32
    #: Bounded intake queue per shard; beyond it -> 503.
    queue_depth: int = 1024
    #: Virtual seconds each worker step advances a busy shard's clock.
    step_s: float = 0.002
    seed: int = 1
    replicas: int = DEFAULT_REPLICAS
    load_factor: float = DEFAULT_LOAD_FACTOR
    auth_secret: str = DEFAULT_SECRET
    #: Root of the durable-state tree; each shard journals under
    #: ``<state_dir>/<shard_id>/``.  None: shards are in-memory only.
    state_dir: Optional[str] = None
    #: Journal fsync policy (see :data:`repro.store.FSYNC_POLICIES`).
    fsync: str = "batch"
    #: Auto-snapshot cadence in journal records (None: manual only).
    snapshot_every: Optional[int] = 256

    def __post_init__(self):
        if self.stack not in STACKS:
            raise ValueError(f"stack must be one of {STACKS}")
        if self.m < 1:
            raise ValueError("fleet needs at least one switch")
        if not 1 <= self.shards <= self.m:
            raise ValueError("need 1 <= shards <= m")
        if not 1 <= self.regions <= self.m:
            raise ValueError("need 1 <= regions <= m")
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}")
        if self.state_dir is not None and self.stack != "P4Auth":
            raise ValueError(
                "state_dir requires the P4Auth stack (the journal "
                "records P4Auth key/sequence state)")

    def shard_state_dir(self, shard_id: str) -> Optional[str]:
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, shard_id)

    @property
    def switch_names(self) -> List[str]:
        return [f"sw{i}" for i in range(self.m)]

    @property
    def shard_ids(self) -> List[str]:
        return [f"shard-{i}" for i in range(self.shards)]

    @property
    def region_ids(self) -> List[str]:
        return [f"r{i}" for i in range(self.regions)]

    def region_of(self, switch: str) -> str:
        """Region owning a switch: near-even contiguous index blocks,
        the same split :func:`repro.net.topology.region_sizes` uses."""
        index = int(switch[2:])
        if not 0 <= index < self.m:
            raise KeyError(switch)
        base, remainder = divmod(self.m, self.regions)
        big_block = remainder * (base + 1)
        if index < big_block:
            return f"r{index // (base + 1)}"
        return f"r{remainder + (index - big_block) // base}"


@dataclass
class _Route:
    """One resolved endpoint: handler + whether it mutates state."""

    handler: object
    authenticated: bool = True


class ControllerService:
    """The sharded P4Auth controller daemon (in-process core)."""

    def __init__(self, config: FleetConfig = FleetConfig(),
                 telemetry: Optional[Telemetry] = None):
        self.config = config
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry(enabled=True)
        self.auth = RequestAuthenticator(config.auth_secret)
        self.shard_map = ShardMap(config.shard_ids,
                                  replicas=config.replicas)
        self.assignment = self.shard_map.assign(
            config.switch_names, load_factor=config.load_factor)
        self._owner: Dict[str, str] = {
            switch: shard for shard, switches in self.assignment.items()
            for switch in switches
        }
        self.workers: Dict[str, ShardWorker] = {
            shard_id: ShardWorker(
                shard_id, self.assignment[shard_id],
                stack_name=config.stack,
                # Distinct, deterministic seed space per shard.
                seed=config.seed + 7919 * index,
                registers=config.registers,
                max_in_flight=config.max_in_flight,
                issue_window=config.issue_window,
                queue_depth=config.queue_depth,
                step_s=config.step_s,
                state_dir=config.shard_state_dir(shard_id),
                fsync=config.fsync,
                snapshot_every=config.snapshot_every,
                metrics=self.telemetry.metrics,
            )
            for index, shard_id in enumerate(config.shard_ids)
        }
        self._register_names = {name for name, _w, _s in config.registers}
        self._region_switches: Dict[str, List[str]] = {
            region_id: [] for region_id in config.region_ids}
        for switch in config.switch_names:
            self._region_switches[config.region_of(switch)].append(switch)
        self._region_rollovers: Dict[str, int] = {
            region_id: 0 for region_id in config.region_ids}
        self._region_last_rollover_s: Dict[str, Optional[float]] = {
            region_id: None for region_id in config.region_ids}
        self._started_monotonic: Optional[float] = None
        self._stopping = False
        self._routes = {
            ("POST", "/v1/read"): _Route(self._handle_read),
            ("POST", "/v1/write"): _Route(self._handle_write),
            ("POST", "/v1/batch"): _Route(self._handle_batch),
            ("POST", "/v1/rollover"): _Route(self._handle_rollover),
            ("GET", "/fleet/status"): _Route(self._handle_status),
            ("GET", "/metrics"): _Route(self._handle_metrics,
                                        authenticated=False),
            ("GET", "/healthz"): _Route(self._handle_healthz,
                                        authenticated=False),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Build and bootstrap every shard, then start their workers."""
        started = time.monotonic()
        for worker in self.workers.values():
            await worker.start()
            # Let the loop breathe between (synchronous) shard builds.
            await asyncio.sleep(0)
        self._started_monotonic = time.monotonic()
        # Regions share the shard pool, so every region's keys converge
        # when the last shard comes up; record that per region with the
        # same metric names the lockstep RegionalKeyAuthority emits.
        bootstrap_wall = self._started_monotonic - started
        metrics = self.telemetry.metrics
        for region_id in self.config.region_ids:
            metrics.counter("kmp_region_bootstrap_total",
                            region=region_id).inc()
            metrics.histogram("kmp_region_convergence_seconds",
                              buckets=KMP_CONVERGENCE_BUCKETS,
                              region=region_id,
                              op="bootstrap").observe(bootstrap_wall)

    async def stop(self) -> None:
        """Graceful drain: refuse new work, finish what's queued."""
        self._stopping = True
        await asyncio.gather(*(worker.stop()
                               for worker in self.workers.values()))

    @property
    def draining(self) -> bool:
        return self._stopping

    @property
    def idle(self) -> bool:
        return all(worker.idle for worker in self.workers.values())

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def owner_of(self, switch: str) -> str:
        """The shard id owning ``switch`` (KeyError if not in fleet)."""
        return self._owner[switch]

    def worker_for(self, switch: str) -> ShardWorker:
        return self.workers[self.owner_of(switch)]

    def _submit(self, op: ShardOp) -> asyncio.Future:
        if self._stopping:
            raise ShardOverload("service", "draining")
        return self.worker_for(op.switch).submit(op)

    # ------------------------------------------------------------------
    # programmatic API (what dispatch and tests build on)
    # ------------------------------------------------------------------

    async def read(self, switch: str, register: str = "target",
                   index: int = 0) -> Tuple[bool, int]:
        return await self._submit(ShardOp("read", switch, register, index))

    async def write(self, switch: str, register: str, index: int,
                    value: int) -> Tuple[bool, int]:
        return await self._submit(
            ShardOp("write", switch, register, index, value))

    async def rollover(self, switch: Optional[str] = None
                       ) -> Dict[str, Dict[str, object]]:
        """Roll the local key of one switch (or the whole fleet).

        Rollover ops ride the same per-shard FIFO as register traffic,
        so a switch's rollover is ordered against its in-flight
        requests; the two-version key consistency rule (§VI-C) keeps
        concurrent requests under the previous key verifiable.
        """
        if self.config.stack != "P4Auth":
            raise ValueError(
                f"stack {self.config.stack!r} has no key management")
        targets = [switch] if switch is not None \
            else list(self.config.switch_names)
        # Submit everything first (per-shard FIFO order is the target
        # order), then settle region by region so each region's rollover
        # convergence can be timed and exported under its own label.
        futures = {name: self._submit(ShardOp("rollover", name))
                   for name in targets}
        by_region: Dict[str, List[str]] = {}
        for name in targets:
            by_region.setdefault(self.config.region_of(name), []).append(name)

        async def settle_region(region_id: str, names: List[str]):
            started = time.monotonic()
            outcomes = await asyncio.gather(*(futures[name]
                                              for name in names))
            wall = time.monotonic() - started
            self._region_rollovers[region_id] += 1
            self._region_last_rollover_s[region_id] = wall
            metrics = self.telemetry.metrics
            metrics.counter("kmp_region_rollover_total",
                            region=region_id).inc()
            metrics.histogram("kmp_region_convergence_seconds",
                              buckets=KMP_CONVERGENCE_BUCKETS,
                              region=region_id,
                              op="rollover").observe(wall)
            return dict(zip(names, outcomes))

        settled = await asyncio.gather(
            *(settle_region(region_id, names)
              for region_id, names in sorted(by_region.items())))
        merged: Dict[str, Tuple[bool, int]] = {}
        for group in settled:
            merged.update(group)
        return {
            name: {"ok": merged[name][0], "key_version": merged[name][1]}
            for name in targets
        }

    def status(self) -> Dict[str, object]:
        shards = [self.workers[shard_id].status()
                  for shard_id in self.config.shard_ids]
        fleet = {
            "stack": self.config.stack,
            "switches": self.config.m,
            "shards": self.config.shards,
            "regions": self.config.regions,
            "submitted": sum(s["submitted"] for s in shards),
            "completed": sum(s["completed"] for s in shards),
            "failed": sum(s["failed"] for s in shards),
            "rejected": sum(s["rejected"] for s in shards),
            "state_dir": self.config.state_dir,
            "recovered_shards": sum(
                1 for worker in self.workers.values() if worker.recovered),
            "draining": self._stopping,
            "uptime_s": (time.monotonic() - self._started_monotonic
                         if self._started_monotonic is not None else 0.0),
        }
        regions = [{
            "region": region_id,
            "switches": len(self._region_switches[region_id]),
            "rollovers": self._region_rollovers[region_id],
            "last_rollover_wall_s": self._region_last_rollover_s[region_id],
        } for region_id in self.config.region_ids]
        return {"fleet": fleet, "shards": shards, "regions": regions}

    def metrics_text(self) -> str:
        """The service registry in Prometheus text format."""
        # Refresh sampled gauges at scrape time so an idle scrape still
        # sees current depths.
        metrics = self.telemetry.metrics
        for shard_id, worker in self.workers.items():
            if worker.batch is not None:
                metrics.gauge("service_shard_in_flight",
                              shard=shard_id).set(
                    worker.status()["in_flight"])
                metrics.gauge("service_shard_queue_depth",
                              shard=shard_id).set(
                    worker.status()["queued"])
        return self.telemetry.render_prometheus()

    # ------------------------------------------------------------------
    # the shared dispatch surface (HTTP codec + in-process client)
    # ------------------------------------------------------------------

    async def dispatch(self, method: str, path: str, body: bytes,
                       headers: Dict[str, str]
                       ) -> Tuple[int, str, bytes]:
        """Authenticate, route, and execute one request.

        Returns ``(status, content_type, body_bytes)``.  This is the
        only way in — the HTTP server and ServiceClient are thin codecs
        over it, so they cannot diverge on auth or semantics.
        """
        route = self._routes.get((method.upper(), path))
        if route is None:
            return self._error(404, f"no route {method} {path}")
        if route.authenticated:
            token = headers.get(TOKEN_HEADER, "")
            if not self.auth.verify(method, path, body, token):
                return self._error(401, "bad or missing X-P4Auth-Token")
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return self._error(400, f"malformed JSON body: {exc}")
        if not isinstance(payload, dict):
            return self._error(400, "request body must be a JSON object")
        try:
            return await route.handler(payload)
        except KeyError as exc:
            return self._error(404, f"unknown switch {exc.args[0]!r}")
        except ShardOverload as exc:
            return self._error(503, str(exc))
        except ValueError as exc:
            return self._error(400, str(exc))

    # -- handlers -------------------------------------------------------

    def _validate_op(self, payload: Dict[str, object],
                     need_value: bool) -> ShardOp:
        switch = payload.get("switch")
        if not isinstance(switch, str):
            raise ValueError("'switch' must be a string")
        if switch not in self._owner:
            raise KeyError(switch)
        register = payload.get("register", "target")
        if register not in self._register_names:
            raise ValueError(
                f"unknown register {register!r} "
                f"(fleet schema: {sorted(self._register_names)})")
        index = payload.get("index", 0)
        if not isinstance(index, int) or index < 0:
            raise ValueError("'index' must be a non-negative integer")
        value = payload.get("value", 0)
        if need_value and not isinstance(value, int):
            raise ValueError("'value' must be an integer")
        kind = "write" if need_value else "read"
        return ShardOp(kind, switch, register, index,
                       value if need_value else 0)

    async def _handle_read(self, payload) -> Tuple[int, str, bytes]:
        op = self._validate_op(payload, need_value=False)
        ok, value = await self._submit(op)
        return self._json(200, {"ok": ok, "switch": op.switch,
                                "register": op.reg_name, "index": op.index,
                                "value": value if ok else None})

    async def _handle_write(self, payload) -> Tuple[int, str, bytes]:
        op = self._validate_op(payload, need_value=True)
        ok, _ = await self._submit(op)
        return self._json(200, {"ok": ok, "switch": op.switch,
                                "register": op.reg_name, "index": op.index})

    async def _handle_batch(self, payload) -> Tuple[int, str, bytes]:
        ops_in = payload.get("ops")
        if not isinstance(ops_in, list) or not ops_in:
            raise ValueError("'ops' must be a non-empty list")
        if len(ops_in) > MAX_BATCH_OPS:
            raise ValueError(f"batch too large (max {MAX_BATCH_OPS} ops)")
        ops: List[ShardOp] = []
        for item in ops_in:
            if not isinstance(item, dict):
                raise ValueError("each op must be an object")
            kind = item.get("kind")
            if kind not in ("read", "write"):
                raise ValueError(
                    f"op kind must be 'read' or 'write', got {kind!r}")
            ops.append(self._validate_op(item, need_value=kind == "write"))
        # Submit synchronously, in list order, so per-switch FIFO is the
        # client's op order; rejected ops fail individually (the earlier
        # ops in the batch are already owed an outcome).
        futures: List[object] = []
        for op in ops:
            try:
                futures.append(self._submit(op))
            except ShardOverload:
                futures.append(None)
        results = []
        for op, future in zip(ops, futures):
            if future is None:
                results.append({"ok": False, "rejected": True,
                                "switch": op.switch})
                continue
            ok, value = await future
            entry = {"ok": ok, "rejected": False, "switch": op.switch}
            if op.kind == "read":
                entry["value"] = value if ok else None
            results.append(entry)
        status = 503 if results and all(r["rejected"] for r in results) \
            else 200
        return self._json(status, {"results": results})

    async def _handle_rollover(self, payload) -> Tuple[int, str, bytes]:
        switch = payload.get("switch")
        if switch is not None:
            if not isinstance(switch, str):
                raise ValueError("'switch' must be a string")
            if switch not in self._owner:
                raise KeyError(switch)
        rolled = await self.rollover(switch)
        return self._json(200, {"ok": all(r["ok"] for r in rolled.values()),
                                "rolled": rolled})

    async def _handle_status(self, _payload) -> Tuple[int, str, bytes]:
        return self._json(200, self.status())

    async def _handle_metrics(self, _payload) -> Tuple[int, str, bytes]:
        return 200, METRICS_TYPE, self.metrics_text().encode("utf-8")

    async def _handle_healthz(self, _payload) -> Tuple[int, str, bytes]:
        return self._json(200, {"ok": not self._stopping})

    # -- response helpers ----------------------------------------------

    @staticmethod
    def _json(status: int, document) -> Tuple[int, str, bytes]:
        return status, JSON_TYPE, (json.dumps(document, sort_keys=True)
                                   .encode("utf-8"))

    @staticmethod
    def _error(status: int, message: str) -> Tuple[int, str, bytes]:
        return ControllerService._json(status, {"ok": False,
                                                "error": message})


__all__ = [
    "ControllerService",
    "DEFAULT_SECRET",
    "FleetConfig",
    "JSON_TYPE",
    "MAX_BATCH_OPS",
    "METRICS_TYPE",
]
