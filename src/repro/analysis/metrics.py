"""Small, dependency-light statistics helpers used by the benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; NaN for empty input."""
    if not samples:
        return math.nan
    return sum(samples) / len(samples)


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; NaN for empty input."""
    if not samples:
        return math.nan
    if not 0 <= pct <= 100:
        raise ValueError("pct must be in [0, 100]")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def normalized_shares(counts: Dict[object, int]) -> Dict[object, float]:
    """Fractions summing to 1 (empty dict if all counts are zero)."""
    total = sum(counts.values())
    if total == 0:
        return {}
    return {key: value / total for key, value in counts.items()}


def format_table(headers: List[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table (the benches print paper-style tables)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialized:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
