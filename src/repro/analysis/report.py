"""Markdown report generation: run every experiment, emit RESULTS.md.

Used by ``examples/reproduce_paper.py`` (and usable programmatically) to
produce a single document with every reproduced table and figure next to
the paper's claims — the artifact a reviewer would want.

:func:`render_artifact_report` is the offline variant: it runs nothing,
instead summarizing ``BENCH_*.json`` artifacts previously emitted by the
experiment engine (``python -m repro run <name> --out-dir ...``).
"""

from __future__ import annotations

import io
import os
from typing import Callable, Dict, List, Optional


class MarkdownReport:
    """Incrementally built Markdown document."""

    def __init__(self, title: str):
        self._buffer = io.StringIO()
        self._buffer.write(f"# {title}\n")

    def section(self, heading: str, body: str = "") -> None:
        self._buffer.write(f"\n## {heading}\n\n")
        if body:
            self._buffer.write(body.rstrip() + "\n")

    def paragraph(self, text: str) -> None:
        self._buffer.write("\n" + text.rstrip() + "\n")

    def table(self, headers: List[str], rows: List[List[object]]) -> None:
        self._buffer.write("\n| " + " | ".join(headers) + " |\n")
        self._buffer.write("|" + "|".join("---" for _ in headers) + "|\n")
        for row in rows:
            self._buffer.write(
                "| " + " | ".join(str(cell) for cell in row) + " |\n")

    def render(self) -> str:
        return self._buffer.getvalue()

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())


def find_artifacts(directory: str = ".") -> List[str]:
    """Paths of every engine artifact in ``directory``, sorted by name."""
    return sorted(
        os.path.join(directory, name) for name in os.listdir(directory)
        if name.startswith("BENCH_") and name.endswith(".json"))


def _render_regions_detail(report: MarkdownReport, trial: Dict) -> None:
    """Sub-table for one trial's per-region rows, if it carries any.

    Region-sharded results (``fleet_scale``, regional ``table3``) put a
    list of per-region dicts under ``regions_detail``; the top-level
    scalar table cannot show a list, so each such trial gets its own
    region-by-region breakdown instead of a silent elision.
    """
    detail = trial["result"].get("regions_detail")
    if not isinstance(detail, list) or not detail:
        return
    if not all(isinstance(row, dict) for row in detail):
        return
    keys = sorted({key for row in detail for key, value in row.items()
                   if isinstance(value, (int, float, str, bool))})
    # Lead with the region id when present.
    if "region" in keys:
        keys.remove("region")
        keys.insert(0, "region")
    report.paragraph(f"Per-region breakdown for `{trial['id']}`:")
    report.table(keys, [
        [f"{row.get(key, ''):.4g}" if isinstance(row.get(key), float)
         else row.get(key, "") for key in keys]
        for row in detail])


def render_artifact_report(directory: str = ".") -> str:
    """Markdown summary of the ``BENCH_*.json`` artifacts in a directory.

    Each artifact becomes one section: provenance line (source, schema,
    spec version, seeding policy, run metadata) plus a table of every
    trial's scalar result fields.  A result's ``regions_detail`` axis (a
    list of per-region row dicts, emitted by the region-sharded
    experiments) is rendered as a sub-table per trial; other nested
    lists/dicts are elided — the JSON itself remains the full record.

    Files that fail to parse or validate against the artifact schema are
    skipped and listed in a trailing "Skipped artifacts" section — one
    corrupt file must not take down the whole report.
    """
    import json

    from repro.engine.artifact import load_artifact

    report = MarkdownReport("P4Auth reproduction — benchmark artifacts")
    paths = find_artifacts(directory)
    if not paths:
        report.paragraph(
            f"No `BENCH_*.json` artifacts found in `{directory}`; "
            "run `python -m repro run <name> --out-dir` first.")
        return report.render()

    skipped: List[List[object]] = []
    for path in paths:
        try:
            doc = load_artifact(path)
        except (ValueError, json.JSONDecodeError, OSError) as exc:
            skipped.append([f"`{os.path.basename(path)}`", str(exc)])
            continue
        meta = doc.get("run_meta", {})
        seeding = (f"base seed {doc['base_seed']}"
                   if doc.get("base_seed") is not None
                   else "reference seeds")
        report.section(
            f"{doc['experiment']} — {doc['title']}",
            f"Source: {doc['source']} · schema `{doc['schema']}` · "
            f"spec v{doc['spec_version']} · {seeding} · "
            f"{len(doc['trials'])} trials · "
            f"workers={meta.get('workers', 1)} · "
            f"cache hits {meta.get('cache_hits', 0)} · "
            f"{meta.get('elapsed_s', 0.0)}s")
        scalar_keys = sorted({
            key for trial in doc["trials"]
            for key, value in trial["result"].items()
            if isinstance(value, (int, float, str, bool))})
        rows = []
        for trial in doc["trials"]:
            row: List[object] = [f"`{trial['id']}`", trial["seed"]]
            for key in scalar_keys:
                value = trial["result"].get(key, "")
                row.append(f"{value:.4g}" if isinstance(value, float)
                           else value)
            rows.append(row)
        report.table(["trial", "seed"] + scalar_keys, rows)
        for trial in doc["trials"]:
            _render_regions_detail(report, trial)
    if skipped:
        report.section(
            "Skipped artifacts",
            f"{len(skipped)} file(s) failed schema validation and were "
            "not summarized:")
        report.table(["file", "reason"], skipped)
    return report.render()


def generate_report(fast: bool = True,
                    progress: Optional[Callable[[str], None]] = None
                    ) -> MarkdownReport:
    """Run every paper experiment and assemble the results document.

    ``fast`` shortens trace-driven experiments (20 s instead of 60 s);
    ``progress`` receives a line per completed experiment.
    """
    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    report = MarkdownReport("P4Auth reproduction — measured results")

    # Table II ----------------------------------------------------------
    from repro.core.program import baseline_program_spec, p4auth_program_spec
    from repro.dataplane.resources import ResourceModel
    model = ResourceModel()
    rows = []
    for name, spec in (("Baseline", baseline_program_spec()),
                       ("With P4Auth", p4auth_program_spec())):
        resource = model.report(spec)
        rows.append([name, f"{resource.tcam_pct}%", f"{resource.sram_pct}%",
                     f"{resource.hash_pct}%", f"{resource.phv_pct}%"])
    report.section("Table II — hardware resource overhead")
    report.table(["program", "TCAM", "SRAM", "Hash Units", "PHV"], rows)
    note("table2 done")

    # Fig 20 -------------------------------------------------------------
    from repro.experiments.fig20_kmp import OPS, run_kmp_rtt
    kmp = run_kmp_rtt(repeats=10)
    report.section("Fig 20 — key management RTT")
    report.table(
        ["operation", "RTT (ms)", "messages", "bytes"],
        [[op, f"{kmp.mean_ms(op):.3f}", kmp.footprint[op][0],
          kmp.footprint[op][1]] for op in OPS])
    note("fig20 done")

    # Fig 21 -------------------------------------------------------------
    from repro.experiments.fig21_multihop import overhead_curve
    curve = overhead_curve(num_probes=20 if fast else 50)
    report.section("Fig 21 — probe traversal overhead vs hops")
    report.table(
        ["hops", "base (us)", "with P4Auth (us)", "overhead"],
        [[r["hops"], f"{r['base_us']:.1f}", f"{r['p4auth_us']:.1f}",
          f"{r['overhead_pct']:.2f}%"] for r in curve])
    note("fig21 done")

    # Fig 18 / 19 ---------------------------------------------------------
    from repro.runtime.comparison import STACKS, measure
    table = measure(duration_s=5.0 if fast else 10.0)
    report.section("Fig 18/19 — register R/W RCT and throughput")
    report.table(
        ["stack", "read RCT (us)", "write RCT (us)", "read (req/s)",
         "write (req/s)"],
        [[name,
          f"{table[(name, 'read')].mean_rct_s * 1e6:.1f}",
          f"{table[(name, 'write')].mean_rct_s * 1e6:.1f}",
          f"{table[(name, 'read')].throughput_rps:.0f}",
          f"{table[(name, 'write')].throughput_rps:.0f}"]
         for name in STACKS])
    note("fig18/19 done")

    # Fig 16 -------------------------------------------------------------
    from repro.experiments.fig16_routescout import MODES as RS_MODES
    from repro.experiments.fig16_routescout import run_routescout
    duration = 20.0 if fast else 60.0
    report.section("Fig 16 — RouteScout traffic distribution")
    report.table(
        ["mode", "path1", "path2", "epochs skipped", "tamper events"],
        [[mode,
          f"{r.share_path1 * 100:.1f}%", f"{r.share_path2 * 100:.1f}%",
          r.epochs_skipped, r.tamper_events]
         for mode, r in ((m, run_routescout(m, duration_s=duration,
                                            attack_start_s=duration * 0.3))
                         for m in RS_MODES)])
    note("fig16 done")

    # Fig 17 -------------------------------------------------------------
    from repro.experiments.fig17_hula import MODES as HULA_MODES
    from repro.experiments.fig17_hula import run_hula
    report.section("Fig 17 — HULA traffic distribution")
    report.table(
        ["mode", "via S2", "via S3", "via S4", "alerts"],
        [[mode,
          f"{r.shares['s2'] * 100:.1f}%", f"{r.shares['s3'] * 100:.1f}%",
          f"{r.shares['s4'] * 100:.1f}%", r.alerts]
         for mode, r in ((m, run_hula(m, duration_s=3.0 if fast else 5.0))
                         for m in HULA_MODES)])
    note("fig17 done")

    # Table I -------------------------------------------------------------
    from repro.experiments.table1_impact import run_table1
    matrix = run_table1().matrix
    report.section("Table I — attack impact per system class")
    report.table(
        ["system", "metric", "baseline", "attack", "attack+P4Auth",
         "detected"],
        [[system, by_mode["baseline"].impact_metric,
          f"{by_mode['baseline'].impact_value:.2f}",
          f"{by_mode['attack'].impact_value:.2f}",
          f"{by_mode['p4auth'].impact_value:.2f}",
          "yes" if by_mode["p4auth"].detected else "no"]
         for system, by_mode in matrix.items()])
    note("table1 done")

    # Table III ------------------------------------------------------------
    from repro.experiments.table3_scalability import run_table3
    scal = run_table3()
    report.section("Table III — KMP scalability (live 25-switch network)")
    report.table(
        ["operation", "messages", "bytes"],
        [["key initialization", scal.init_messages, scal.init_bytes],
         ["key update", scal.update_messages, scal.update_bytes]])
    report.paragraph(
        f"Parallel bootstrap: {scal.parallel_init_time_s * 1e3:.1f} ms; "
        f"serial lower bound: {scal.serial_init_time_s * 1e3:.0f} ms "
        "(paper estimates ~150 ms serial).")
    note("table3 done")

    # Extensions -----------------------------------------------------------
    from repro.experiments.attack2_aggregation import run_aggregation
    from repro.experiments.int_manipulation import run_int_manipulation
    report.section("Extensions — Attack 2 (aggregation) and secINT")
    agg_rows = []
    for mode in ("baseline", "attack", "p4auth"):
        result = run_aggregation(mode, chunks=20)
        agg_rows.append([f"aggregation/{mode}",
                         f"{result.correct_chunks}/{result.chunks} correct",
                         f"JCT {result.jct_rounds:.2f}",
                         result.alerts])
    for mode in ("baseline", "attack", "p4auth"):
        result = run_int_manipulation(mode, num_probes=20)
        agg_rows.append([f"int/{mode}",
                         f"max hop {result.reported_max_hop_latency_us} us",
                         "aware" if result.detected else "blind",
                         result.alerts])
    report.table(["scenario", "outcome", "detail", "alerts"], agg_rows)
    note("extensions done")

    # Observability ---------------------------------------------------------
    from repro.telemetry import Telemetry
    tel = Telemetry(enabled=True)
    run_hula("p4auth", duration_s=2.0 if fast else 5.0, telemetry=tel)
    registry = tel.metrics
    report.section(
        "Observability — instrumented Fig 17 p4auth run",
        "Metrics from one telemetry-enabled HULA run with the S1-S4 "
        "tamperer active (`python -m repro telemetry fig17` reproduces "
        "this with the full Prometheus dump and a JSONL trace).")

    def rows_for(names, columns):
        out = []
        for metric_name in names:
            for metric in registry.with_name(metric_name):
                labels = dict(metric.labels)
                out.append([labels.get(c, "-") for c in columns]
                           + [int(metric.value)])
        return out

    report.paragraph("Digest verification outcomes:")
    report.table(["switch", "channel", "result", "count"],
                 rows_for(["p4auth_digest_verify_total"],
                          ["switch", "channel", "result"]))

    report.paragraph("Packet drops by reason (pipeline and network):")
    report.table(["where", "stage", "reason", "count"],
                 rows_for(["dataplane_drop_total"],
                          ["switch", "stage", "reason"])
                 + rows_for(["net_dropped_packets_total"],
                            ["node", "stage", "reason"]))

    report.paragraph("Per-link byte counters:")
    report.table(["link", "direction", "bytes"],
                 rows_for(["net_link_bytes_total"], ["link", "direction"]))

    report.paragraph(
        f"Trace: {tel.tracer.emitted} events emitted, "
        f"{len(tel.tracer)} retained "
        f"({tel.tracer.evicted} evicted by the ring buffer).")
    note("observability done")

    return report
