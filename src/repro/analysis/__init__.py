"""Measurement utilities: summary statistics and result tables."""

from repro.analysis.metrics import (
    mean,
    percentile,
    normalized_shares,
    format_table,
)

__all__ = ["mean", "percentile", "normalized_shares", "format_table"]
