"""A minimal, deterministic discrete-event simulator.

Events are ``(time, sequence, callable, args)`` tuples in a binary heap;
the sequence number breaks ties so simultaneous events run in scheduling
order, keeping every run bit-reproducible.

The simulator is also the root of the observability tree: pass a
:class:`~repro.telemetry.Telemetry` instance and every layer built on top
(network, switches, controller, runtime stacks) discovers it through
``sim.telemetry``.  The tracer's clock is bound to the virtual clock, so
trace events are stamped with deterministic simulated time.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, List, Optional, Tuple

from repro.telemetry import NULL_TELEMETRY, Telemetry


class EventHandle:
    """A cancellable scheduled event (from :meth:`EventSimulator.schedule_cancellable`).

    Cancellation is lazy: the heap entry stays queued and is discarded
    when its time comes, which keeps the heap discipline (and therefore
    determinism) untouched.  Fault injectors and retry timers use this to
    withdraw restarts/timeouts that completion made moot.
    """

    __slots__ = ("_sim", "_fn", "_args", "cancelled", "fired")

    def __init__(self, sim: "EventSimulator", fn: Callable, args: tuple):
        self._sim = sim
        self._fn = fn
        self._args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from running (no-op if it already ran)."""
        if not self.fired:
            self.cancelled = True

    def _fire(self) -> None:
        self.fired = True
        if self.cancelled:
            self._sim.events_cancelled += 1
            return
        self._fn(*self._args)


class EventSimulator:
    """Heap-based event loop with virtual time in seconds."""

    def __init__(self, telemetry: Optional[Telemetry] = None):
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.events_executed = 0
        #: Cancelled events that reached their fire time and were discarded.
        self.events_cancelled = 0
        #: Events that were still eligible to run when an event budget
        #: (``max_events``) was exhausted.  They stay queued — this counts
        #: budget starvation, not loss — but before this counter existed
        #: such stalls were invisible.  Each event is counted at most once
        #: across repeated exhausted ``run()`` calls (see ``_deferred_seen``).
        self.events_dropped = 0
        # Sequence numbers of queued events already tallied in
        # ``events_dropped``; without this, every budget-exhausted run()
        # would re-count the same still-queued events and inflate the
        # starvation counter.  Entries are discarded as events execute.
        self._deferred_seen: set = set()
        #: Number of ``run()`` calls that exhausted their event budget
        #: with eligible work remaining.
        self.budget_exhaustions = 0
        #: Deepest the event heap has ever been.
        self.heap_depth_high_water = 0
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            self.telemetry.bind_clock(lambda: self._now)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, fn, *args)

    def schedule_cancellable(self, delay: float, fn: Callable,
                             *args) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        handle = EventHandle(self, fn, args)
        self.schedule(delay, handle._fire)
        return handle

    def schedule_at(self, at: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``at``."""
        if at < self._now:
            raise ValueError(f"cannot schedule into the past (at={at}, now={self._now})")
        heapq.heappush(self._queue, (at, next(self._sequence), fn, args))
        if len(self._queue) > self.heap_depth_high_water:
            self.heap_depth_high_water = len(self._queue)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain events (optionally only up to time ``until``).

        Returns the number of events executed.  ``max_events`` guards
        against runaway event storms (e.g., an unmitigated DoS scenario).
        If the budget runs out with eligible events still queued, the
        clock stays at the last executed event (it does *not* jump to
        ``until``, since work remains inside the window) and the deferred
        events are tallied in :attr:`events_dropped`.
        """
        wall_start = time.perf_counter()
        executed = 0
        while self._queue and executed < max_events:
            at, seq, fn, args = self._queue[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._queue)
            if self._deferred_seen:
                self._deferred_seen.discard(seq)
            self._now = at
            fn(*args)
            executed += 1
        budget_exhausted = (
            executed >= max_events and bool(self._queue)
            and (until is None or self._queue[0][0] <= until)
        )
        if budget_exhausted:
            fresh = [event[1] for event in self._queue
                     if (until is None or event[0] <= until)
                     and event[1] not in self._deferred_seen]
            deferred = len(fresh)
            self._deferred_seen.update(fresh)
            self.events_dropped += deferred
            self.budget_exhaustions += 1
        elif until is not None:
            self._now = max(self._now, until)
        self.events_executed += executed
        telemetry = self.telemetry
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.counter("sim_events_executed_total").inc(executed)
            metrics.counter("sim_wall_seconds_total").inc(
                time.perf_counter() - wall_start)
            metrics.gauge("sim_virtual_seconds").set(self._now)
            metrics.gauge("sim_heap_depth_high_water").set_max(
                self.heap_depth_high_water)
            metrics.gauge("sim_events_pending").set(len(self._queue))
            if budget_exhausted:
                metrics.counter("sim_events_deferred_total").inc(deferred)
                metrics.counter("sim_budget_exhausted_total").inc()
                telemetry.tracer.emit("sim.budget_exhausted",
                                      deferred=deferred, executed=executed)
        return executed

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
