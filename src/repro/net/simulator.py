"""A minimal, deterministic discrete-event simulator.

Events are ``(time, sequence, callable, args)`` tuples in a binary heap;
the sequence number breaks ties so simultaneous events run in scheduling
order, keeping every run bit-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventSimulator:
    """Heap-based event loop with virtual time in seconds."""

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, at: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``at``."""
        if at < self._now:
            raise ValueError(f"cannot schedule into the past (at={at}, now={self._now})")
        heapq.heappush(self._queue, (at, next(self._sequence), fn, args))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain events (optionally only up to time ``until``).

        Returns the number of events executed.  ``max_events`` guards
        against runaway event storms (e.g., an unmitigated DoS scenario).
        """
        executed = 0
        while self._queue and executed < max_events:
            at, _, fn, args = self._queue[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._queue)
            self._now = at
            fn(*args)
            executed += 1
        if until is not None and (not self._queue or self._queue[0][0] > until):
            self._now = max(self._now, until)
        self.events_executed += executed
        return executed

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
