"""Links and control channels, with taps for MitM adversaries.

A :class:`Link` joins two (node, port) endpoints.  A *tap* is a callable
``tap(packet, direction) -> Packet | None`` invoked while the packet is in
flight: it may return the packet unchanged, a modified packet (tampering),
or ``None`` (drop).  Taps are how both adversary classes from the threat
model attach:

- the **on-link MitM** (DP-DP case) taps a :class:`Link`;
- the **compromised switch OS** (C-DP case) taps a :class:`ControlChannel`,
  modeling a malicious preloaded library mangling the arguments of SDK
  calls between the gRPC agent and the driver (paper §II-A).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.dataplane.packet import Packet

# A tap sees (packet, direction) and returns the possibly-modified packet,
# or None to drop it.  Direction is "a->b"/"b->a" for links and
# "c->dp"/"dp->c" for control channels.
Tap = Callable[[Packet, str], Optional[Packet]]


class Link:
    """A bidirectional point-to-point link between two switch ports."""

    def __init__(self, end_a: Tuple[str, int], end_b: Tuple[str, int],
                 latency_s: float = 5e-6, bandwidth_bps: float = 10e9):
        if latency_s < 0 or bandwidth_bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.end_a = end_a
        self.end_b = end_b
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.up = True
        self.taps: List[Tap] = []
        self.packets_carried = 0
        self.packets_dropped_by_taps = 0
        self.bytes_carried = 0
        # Output-queue model: the time each direction's transmitter is
        # busy until.  Packets arriving while busy queue behind it, so
        # sustained load yields real queueing delay (FCT inflation).
        self._busy_until = {"a->b": 0.0, "b->a": 0.0}
        self.max_queue_delay_s = 0.0

    @property
    def label(self) -> str:
        """Stable identifier used as the telemetry ``link`` label."""
        return (f"{self.end_a[0]}:{self.end_a[1]}-"
                f"{self.end_b[0]}:{self.end_b[1]}")

    def peer_of(self, name: str, port: int) -> Tuple[str, int]:
        """The endpoint opposite (name, port)."""
        if (name, port) == self.end_a:
            return self.end_b
        if (name, port) == self.end_b:
            return self.end_a
        raise ValueError(f"({name}, {port}) is not an endpoint of this link")

    def direction_from(self, name: str, port: int) -> str:
        return "a->b" if (name, port) == self.end_a else "b->a"

    def joins(self, name_a: str, name_b: str) -> bool:
        """True if this link connects the two named nodes.

        ``"*"`` matches any node — fault plans use it to target whole
        classes of links (``joins("s1", "*")`` = every link at s1).
        """
        names = (self.end_a[0], self.end_b[0])
        for first, second in ((name_a, name_b), (name_b, name_a)):
            if ((first == "*" or first == names[0])
                    and (second == "*" or second == names[1])):
                return True
        return False

    def add_tap(self, tap: Tap) -> None:
        """Attach an in-flight observer/modifier (MitM attachment point)."""
        self.taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self.taps.remove(tap)

    def transit(self, packet: Packet, direction: str) -> Optional[Packet]:
        """Run taps over a packet in flight; None means dropped."""
        current: Optional[Packet] = packet
        for tap in self.taps:
            if current is None:
                break
            current = tap(current, direction)
        if current is None:
            self.packets_dropped_by_taps += 1
        else:
            self.packets_carried += 1
            self.bytes_carried += current.size_bytes
        return current

    def delay_for(self, size_bytes: int) -> float:
        """Propagation plus serialization delay for a packet."""
        return self.latency_s + size_bytes * 8.0 / self.bandwidth_bps

    def transmit_delay(self, size_bytes: int, direction: str,
                       now: float) -> float:
        """Full delay including queueing behind earlier packets.

        Models a FIFO output queue per direction: serialization starts
        when the transmitter frees up; the returned delay is measured
        from ``now`` to arrival at the far end.
        """
        serialization = size_bytes * 8.0 / self.bandwidth_bps
        start = max(now, self._busy_until[direction])
        queue_delay = start - now
        self._busy_until[direction] = start + serialization
        self.max_queue_delay_s = max(self.max_queue_delay_s, queue_delay)
        return queue_delay + serialization + self.latency_s

    def __repr__(self) -> str:
        return f"Link({self.end_a} <-> {self.end_b}, up={self.up})"


class ControlChannel:
    """The controller <-> switch path through the (untrusted) switch OS.

    PacketOut messages travel ``c->dp``; PacketIn messages travel
    ``dp->c``.  Taps here model the compromised-OS adversary: they run
    *after* the controller has composed/authenticated the message and
    *before* the data plane parses it (and vice versa), exactly the window
    the LD_PRELOAD-style attack of §II-A controls.
    """

    def __init__(self, switch_name: str, latency_s: float = 350e-6):
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        self.switch_name = switch_name
        self.latency_s = latency_s
        self.taps: List[Tap] = []
        self.messages_carried = 0
        self.messages_dropped_by_taps = 0

    @property
    def label(self) -> str:
        """Stable identifier used as the telemetry ``channel`` label."""
        return f"c-{self.switch_name}"

    def add_tap(self, tap: Tap) -> None:
        self.taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self.taps.remove(tap)

    def transit(self, packet: Packet, direction: str) -> Optional[Packet]:
        if direction not in ("c->dp", "dp->c"):
            raise ValueError(f"bad control-channel direction {direction!r}")
        current: Optional[Packet] = packet
        for tap in self.taps:
            if current is None:
                break
            current = tap(current, direction)
        if current is None:
            self.messages_dropped_by_taps += 1
        else:
            self.messages_carried += 1
        return current
