"""PCAP capture of simulated traffic.

A :class:`PcapCapture` attaches to a link or control channel as a passive
tap and writes every packet it sees into a standard libpcap file
(readable by Wireshark/tcpdump).  Each record's bytes are the packet's
real wire serialization, prefixed with a synthetic Ethernet header whose
EtherType marks P4Auth traffic — so a captured KMP exchange or tampered
probe can be inspected with ordinary tooling.

The writer implements the classic pcap format directly (magic
0xA1B2C3D4, microsecond timestamps, LINKTYPE_ETHERNET).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.core.constants import P4AUTH
from repro.dataplane.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
ETHERTYPE_P4AUTH = 0x88B5
ETHERTYPE_OTHER = 0x88B6

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


def _synthetic_ethernet(packet: Packet) -> bytes:
    ethertype = ETHERTYPE_P4AUTH if packet.has(P4AUTH) else ETHERTYPE_OTHER
    return (b"\x02\x00\x00\x00\x00\x02"      # dst (locally administered)
            + b"\x02\x00\x00\x00\x00\x01"    # src
            + ethertype.to_bytes(2, "big"))


class PcapCapture:
    """Passive capture tap; call :meth:`save` to write the .pcap file."""

    def __init__(self, clock, snaplen: int = 65535):
        """``clock`` is a zero-argument callable returning simulated
        seconds (pass ``lambda: sim.now``)."""
        self._clock = clock
        self.snaplen = snaplen
        self.records: List[Tuple[float, bytes]] = []

    # -- tap interface ---------------------------------------------------

    def __call__(self, packet: Packet, direction: str) -> Packet:
        self.records.append(
            (self._clock(), _synthetic_ethernet(packet) + packet.serialize())
        )
        return packet

    def attach(self, channel) -> "PcapCapture":
        channel.add_tap(self)
        return self

    # -- output ------------------------------------------------------------

    def dump(self) -> bytes:
        """The complete pcap file as bytes."""
        out = bytearray(_GLOBAL_HEADER.pack(
            PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
            0,               # thiszone
            0,               # sigfigs
            self.snaplen,
            LINKTYPE_ETHERNET,
        ))
        for timestamp, frame in self.records:
            seconds = int(timestamp)
            microseconds = int(round((timestamp - seconds) * 1e6))
            captured = frame[: self.snaplen]
            out += _RECORD_HEADER.pack(seconds, microseconds,
                                       len(captured), len(frame))
            out += captured
        return bytes(out)

    def save(self, path: str) -> int:
        """Write the capture; returns the number of records."""
        with open(path, "wb") as handle:
            handle.write(self.dump())
        return len(self.records)


def read_pcap(data: bytes) -> List[Tuple[float, bytes]]:
    """Minimal pcap reader (for tests): [(timestamp, frame), ...]."""
    magic, major, minor, _tz, _sig, _snap, linktype = _GLOBAL_HEADER.unpack_from(
        data, 0)
    if magic != PCAP_MAGIC:
        raise ValueError(f"bad pcap magic {magic:#x}")
    if linktype != LINKTYPE_ETHERNET:
        raise ValueError(f"unexpected linktype {linktype}")
    records = []
    offset = _GLOBAL_HEADER.size
    while offset < len(data):
        seconds, micros, captured, _original = _RECORD_HEADER.unpack_from(
            data, offset)
        offset += _RECORD_HEADER.size
        records.append((seconds + micros / 1e6,
                        data[offset:offset + captured]))
        offset += captured
    return records
