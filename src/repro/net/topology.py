"""Topology builders for the paper's experiment setups.

- :func:`linear_chain` — N switches in a row with a host on each end
  (Fig 21's multi-hop probe traversal experiment).
- :func:`hula_fig3_topology` — the 5-switch topology of Fig 3: S1 reaches
  S5 via three parallel paths through S2, S3, and S4.
- :func:`leaf_spine` — a parameterized leaf-spine fabric for load-balancer
  scenarios beyond the paper's minimal topology.
- :func:`random_regular_fabric` — an m-switch random d-regular graph, the
  Table III fabric shape, scalable to the §XI production sizes
  (m=100, m=400).
- :func:`regional_fabric` — the fleet-scale shape: ``regions`` random
  d-regular fabrics, each in its own :class:`~repro.net.region.Region`,
  joined by seeded boundary links into a
  :class:`~repro.net.region.RegionalWorld`.  With ``regions=1`` it builds
  byte-for-byte the same world as :func:`random_regular_fabric` (which is
  now a thin wrapper over it).

All builders return ``(network, extras)`` where ``extras`` is a dict of
the named nodes/ports a caller needs to run the experiment
(:func:`regional_fabric` returns ``(world, extras)``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.crypto.prng import XorShiftPrng
from repro.dataplane.switch import DataplaneSwitch
from repro.net.costs import CostModel
from repro.net.network import Network
from repro.net.region import (
    DEFAULT_BOUNDARY_LATENCY_S,
    Region,
    RegionalWorld,
)
from repro.net.simulator import EventSimulator

SwitchFactory = Callable[[str, int], DataplaneSwitch]


def _default_factory(name: str, num_ports: int) -> DataplaneSwitch:
    return DataplaneSwitch(name, num_ports=num_ports)


def linear_chain(num_switches: int,
                 factory: Optional[SwitchFactory] = None,
                 costs: Optional[CostModel] = None,
                 telemetry=None
                 ) -> Tuple[Network, Dict[str, object]]:
    """``h_src - s1 - s2 - ... - sN - h_dst``.

    Port convention per switch: port 1 faces the source side, port 2 the
    destination side.
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    factory = factory or _default_factory
    sim = EventSimulator(telemetry=telemetry)
    net = Network(sim, costs)
    names = [f"s{i}" for i in range(1, num_switches + 1)]
    for name in names:
        net.add_switch(factory(name, 2))
    src = net.add_host("h_src")
    dst = net.add_host("h_dst")
    net.connect("h_src", 1, names[0], 1)
    for left, right in zip(names, names[1:]):
        net.connect(left, 2, right, 1)
    net.connect(names[-1], 2, "h_dst", 1)
    return net, {"sim": sim, "switches": names, "src": src, "dst": dst}


def hula_fig3_topology(factory: Optional[SwitchFactory] = None,
                       costs: Optional[CostModel] = None,
                       telemetry=None
                       ) -> Tuple[Network, Dict[str, object]]:
    """The Fig 3 topology: S1 -> {S2, S3, S4} -> S5, hosts at both ends.

    Port map on S1: port 2 -> S2, port 3 -> S3, port 4 -> S4, port 1 ->
    host.  Port map on S5 mirrors it.  Middle switches use port 1 toward
    S1 and port 2 toward S5.
    """
    factory = factory or _default_factory
    sim = EventSimulator(telemetry=telemetry)
    net = Network(sim, costs)
    for name, ports in (("s1", 4), ("s2", 2), ("s3", 2), ("s4", 2), ("s5", 4)):
        net.add_switch(factory(name, ports))
    h1 = net.add_host("h1")
    h5 = net.add_host("h5")
    net.connect("h1", 1, "s1", 1)
    net.connect("h5", 1, "s5", 1)
    for index, mid in enumerate(("s2", "s3", "s4"), start=2):
        net.connect("s1", index, mid, 1)
        net.connect(mid, 2, "s5", index)
    return net, {
        "sim": sim,
        "h1": h1,
        "h5": h5,
        "paths": {"s2": 2, "s3": 3, "s4": 4},  # S1 egress port per mid switch
    }


def leaf_spine(num_leaves: int = 4, num_spines: int = 2,
               factory: Optional[SwitchFactory] = None,
               costs: Optional[CostModel] = None,
               telemetry=None
               ) -> Tuple[Network, Dict[str, object]]:
    """A leaf-spine fabric with one host per leaf.

    Leaf port map: port 1 -> host, ports 2..(1+num_spines) -> spines in
    order.  Spine port map: ports 1..num_leaves -> leaves in order.
    """
    if num_leaves < 2 or num_spines < 1:
        raise ValueError("need >= 2 leaves and >= 1 spine")
    factory = factory or _default_factory
    sim = EventSimulator(telemetry=telemetry)
    net = Network(sim, costs)
    leaves = [f"leaf{i}" for i in range(1, num_leaves + 1)]
    spines = [f"spine{i}" for i in range(1, num_spines + 1)]
    for name in leaves:
        net.add_switch(factory(name, 1 + num_spines))
    for name in spines:
        net.add_switch(factory(name, num_leaves))
    hosts = {}
    for index, leaf in enumerate(leaves, start=1):
        host = net.add_host(f"h{index}")
        hosts[leaf] = host
        net.connect(host.name, 1, leaf, 1)
    for leaf_idx, leaf in enumerate(leaves, start=1):
        for spine_idx, spine in enumerate(spines, start=1):
            net.connect(leaf, 1 + spine_idx, spine, leaf_idx)
    return net, {
        "sim": sim,
        "leaves": leaves,
        "spines": spines,
        "hosts": hosts,
    }


def random_regular_fabric(m: int, degree: int = 4, seed: int = 1,
                          factory: Optional[SwitchFactory] = None,
                          costs: Optional[CostModel] = None,
                          telemetry=None
                          ) -> Tuple[Network, Dict[str, object]]:
    """An m-switch fabric wired as a random d-regular graph.

    This is the Table III topology (m=25, d=4 gives exactly the paper's
    n=50 links), parameterized so the batch-throughput experiments can
    scale the same shape to m=100 and m=400.  Switch ``sw<i>`` gets
    ``degree`` ports, assigned to incident edges in sorted-edge order
    (ports 1..degree).  Node/edge iteration is sorted, so the wiring is a
    pure function of ``(m, degree, seed)``.

    Since the region refactor this delegates to :func:`regional_fabric`
    with ``regions=1`` — same construction order, same event schedule,
    byte-identical payloads and wire streams (pinned by the
    regions-identity integration test).
    """
    world, extras = regional_fabric(m, regions=1, degree=degree, seed=seed,
                                    factory=factory, costs=costs,
                                    telemetry=telemetry)
    region = world.regions[0]
    return region.net, {"sim": region.sim, "graph": extras["graph"],
                        "switches": list(region.switches), "world": world}


def region_sizes(m: int, regions: int) -> List[int]:
    """Deterministic near-even split of m switches across regions."""
    if regions < 1:
        raise ValueError("need at least one region")
    if m < regions:
        raise ValueError(f"cannot split {m} switches into {regions} regions")
    base, remainder = divmod(m, regions)
    return [base + (1 if index < remainder else 0)
            for index in range(regions)]


def region_seed(seed: int, index: int) -> int:
    """Per-region graph seed; region 0 keeps the caller's seed so the
    regions=1 world is the flat world."""
    return seed + 7919 * index


def _boundary_plan(regions: int, sizes: List[int], seed: int,
                   links_per_pair: int
                   ) -> List[Tuple[int, int, int, int]]:
    """Seeded boundary attachment: (region_a, sw_a, region_b, sw_b) rows.

    Adjacent regions are joined in a ring (a chain for two regions); the
    attachment switches are drawn from a dedicated PRNG so the plan is a
    pure function of ``(regions, sizes, seed, links_per_pair)`` and stays
    independent of the per-region graph draws.
    """
    if regions < 2:
        return []
    pairs = [(index, index + 1) for index in range(regions - 1)]
    if regions > 2:
        pairs.append((regions - 1, 0))
    prng = XorShiftPrng((seed << 8) ^ 0xB0D7)
    plan: List[Tuple[int, int, int, int]] = []
    for region_a, region_b in pairs:
        for _ in range(links_per_pair):
            plan.append((region_a, prng.next64() % sizes[region_a],
                         region_b, prng.next64() % sizes[region_b]))
    return plan


def regional_fabric(m: int, regions: int = 1, degree: int = 4, seed: int = 1,
                    factory: Optional[SwitchFactory] = None,
                    costs: Optional[CostModel] = None,
                    telemetry=None,
                    boundary_links_per_pair: int = 2,
                    boundary_latency_s: float = DEFAULT_BOUNDARY_LATENCY_S
                    ) -> Tuple[RegionalWorld, Dict[str, object]]:
    """m switches split across ``regions`` random d-regular fabrics.

    Every region gets its own simulator + network (its partition of the
    event load) and a near-even share of the switches, wired exactly like
    :func:`random_regular_fabric` within the region.  Adjacent regions
    are joined by ``boundary_links_per_pair`` seeded boundary links
    through region gateways (see :mod:`repro.net.region`); boundary
    ports are extra ports above ``degree`` and are invisible to KMP port
    keying.

    Switch names are ``sw<i>`` when ``regions == 1`` (the legacy flat
    namespace) and ``r<k>sw<i>`` otherwise.  ``telemetry`` is attached to
    region 0's simulator (for ``regions == 1`` that is the whole world).
    """
    if regions == 1:
        boundary_plan: List[Tuple[int, int, int, int]] = []
        sizes = [m]
    else:
        sizes = region_sizes(m, regions)
        boundary_plan = _boundary_plan(regions, sizes, seed,
                                       boundary_links_per_pair)
    if min(sizes) <= degree:
        raise ValueError(f"need every region larger than degree={degree}; "
                         f"sizes={sizes}")
    factory = factory or _default_factory
    # Boundary ports are planned before any switch exists so the factory
    # is called with the final port count.
    extra_ports: Dict[Tuple[int, int], int] = {}
    for region_a, sw_a, region_b, sw_b in boundary_plan:
        extra_ports[(region_a, sw_a)] = extra_ports.get((region_a, sw_a),
                                                        0) + 1
        extra_ports[(region_b, sw_b)] = extra_ports.get((region_b, sw_b),
                                                        0) + 1

    region_objs: List[Region] = []
    graphs: Dict[str, "nx.Graph"] = {}
    switches_by_region: Dict[str, List[str]] = {}
    for index, size in enumerate(sizes):
        region_id = f"r{index}"
        prefix = "" if regions == 1 else region_id
        graph = nx.random_regular_graph(degree, size,
                                        seed=region_seed(seed, index))
        sim = EventSimulator(telemetry=telemetry if index == 0 else None)
        net = Network(sim, costs)
        names: List[str] = []
        next_port: Dict[str, int] = {}
        for node in sorted(graph.nodes):
            name = f"{prefix}sw{node}"
            ports = degree + extra_ports.get((index, node), 0)
            net.add_switch(factory(name, ports))
            names.append(name)
            next_port[name] = 1
        for a, b in sorted(graph.edges):
            name_a, name_b = f"{prefix}sw{a}", f"{prefix}sw{b}"
            net.connect(name_a, next_port[name_a], name_b, next_port[name_b])
            next_port[name_a] += 1
            next_port[name_b] += 1
        region_objs.append(Region(region_id, index, sim, net, names))
        graphs[region_id] = graph
        switches_by_region[region_id] = names

    world = RegionalWorld(region_objs)
    used_ports: Dict[Tuple[int, int], int] = {}
    for region_a, sw_a, region_b, sw_b in boundary_plan:
        port_a = degree + 1 + used_ports.get((region_a, sw_a), 0)
        port_b = degree + 1 + used_ports.get((region_b, sw_b), 0)
        used_ports[(region_a, sw_a)] = used_ports.get((region_a, sw_a),
                                                      0) + 1
        used_ports[(region_b, sw_b)] = used_ports.get((region_b, sw_b),
                                                      0) + 1
        world.add_boundary_link(f"r{region_a}", f"r{region_a}sw{sw_a}",
                                port_a,
                                f"r{region_b}", f"r{region_b}sw{sw_b}",
                                port_b, latency_s=boundary_latency_s)

    extras: Dict[str, object] = {
        "world": world,
        "regions": [region.id for region in world.regions],
        "switches": [name for region in world.regions
                     for name in region.switches],
        "switches_by_region": switches_by_region,
        "graphs": graphs,
        "boundary_links": list(world.boundary_links),
        "graph": graphs["r0"],
        "sim": world.regions[0].sim,
    }
    return world, extras


def as_graph(net: Network) -> "nx.Graph":
    """Export the switch-level topology as a networkx graph.

    Used by the scalability analysis (Table III) to count switches and
    links, and available for users to run graph algorithms on the fabric.
    """
    graph = nx.Graph()
    for name in net.switch_names():
        graph.add_node(name)
    seen = set()
    for link in net.links:
        a, b = link.end_a[0], link.end_b[0]
        if a in graph and b in graph and (a, b) not in seen and (b, a) not in seen:
            graph.add_edge(a, b)
            seen.add((a, b))
    return graph
