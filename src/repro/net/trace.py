"""Synthetic traffic traces (substitute for the paper's CAIDA replay).

Fig 16 replays CAIDA PCAP traces into RouteScout for 60 seconds.  CAIDA
data is license-gated, so we generate synthetic traffic with the two
properties RouteScout's decision loop actually depends on: heavy-tailed
flow sizes (Pareto) and Poisson flow arrivals.  Generation is seeded and
fully reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

from repro.crypto.prng import XorShiftPrng


@dataclass
class Flow:
    """One synthetic flow."""

    flow_id: int
    start_time: float
    size_bytes: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    @property
    def five_tuple(self) -> tuple:
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port,
                self.protocol)

    def packet_count(self, mtu: int = 1500) -> int:
        return max(1, math.ceil(self.size_bytes / mtu))


class TraceGenerator:
    """Seeded generator of CAIDA-like flow arrivals.

    Parameters
    ----------
    seed:
        PRNG seed; identical seeds generate identical traces.
    arrival_rate_hz:
        Mean flow arrival rate (Poisson).
    pareto_shape / min_flow_bytes:
        Flow-size distribution: Pareto with the given shape (alpha), the
        canonical heavy-tailed internet traffic model.  Shape 1.2 gives
        the mice-and-elephants mix RouteScout's paths see.
    """

    def __init__(self, seed: int = 42, arrival_rate_hz: float = 200.0,
                 pareto_shape: float = 1.2, min_flow_bytes: int = 1200,
                 max_flow_bytes: int = 50_000_000):
        if arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be positive")
        if pareto_shape <= 0:
            raise ValueError("pareto_shape must be positive")
        self._prng = XorShiftPrng(seed)
        self.arrival_rate_hz = arrival_rate_hz
        self.pareto_shape = pareto_shape
        self.min_flow_bytes = min_flow_bytes
        self.max_flow_bytes = max_flow_bytes

    def _exponential(self, rate: float) -> float:
        u = max(self._prng.uniform(), 1e-12)
        return -math.log(u) / rate

    def _pareto_size(self) -> int:
        u = max(self._prng.uniform(), 1e-12)
        size = self.min_flow_bytes / (u ** (1.0 / self.pareto_shape))
        return int(min(size, self.max_flow_bytes))

    def flows(self, duration_s: float) -> Iterator[Flow]:
        """Yield flows with start times in [0, duration_s), in time order."""
        now = 0.0
        flow_id = 0
        while True:
            now += self._exponential(self.arrival_rate_hz)
            if now >= duration_s:
                return
            flow_id += 1
            yield Flow(
                flow_id=flow_id,
                start_time=now,
                size_bytes=self._pareto_size(),
                src_ip=0x0A000000 | self._prng.next_bits(16),
                dst_ip=0xC0A80000 | self._prng.next_bits(16),
                src_port=1024 + self._prng.next_bits(14),
                dst_port=(80, 443, 8080, 53)[self._prng.next_bits(2)],
            )

    def flow_list(self, duration_s: float) -> List[Flow]:
        """Materialized, time-ordered flow list for a window."""
        return list(self.flows(duration_s))
