"""The simulated network: nodes, wiring, and message delivery.

:class:`Network` owns the switch/host nodes, the links between data-plane
ports, and one control channel per switch toward a single logical
controller.  It translates pipeline actions (Emit/ToController/Drop) into
scheduled events, charging the cost model for switch processing (including
per-digest costs, measured as hash-extern invocation deltas) and link
delays.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import Drop, Emit, ToController
from repro.dataplane.switch import DataplaneSwitch
from repro.crypto.prng import XorShiftPrng
from repro.net.costs import CostModel
from repro.net.links import ControlChannel, Link
from repro.net.simulator import EventSimulator


class SwitchNode:
    """A data-plane switch attached to the network fabric."""

    def __init__(self, network: "Network", switch: DataplaneSwitch):
        self.network = network
        self.switch = switch
        self.name = switch.name
        self.drops: List[Tuple[float, str]] = []

    def receive(self, packet: Packet, ingress_port: int) -> None:
        """Handle an arriving packet: run the pipeline, schedule outcomes."""
        sim = self.network.sim
        costs = self.network.costs
        hash_before = self.switch.hash.invocations
        actions = self.switch.process(packet, ingress_port, now=sim.now)
        hash_ops = self.switch.hash.invocations - hash_before
        proc_delay = costs.switch_fwd_s + hash_ops * costs.digest_op_s
        for action in actions:
            if isinstance(action, Emit):
                sim.schedule(
                    proc_delay, self.network.transmit, self.name,
                    action.port, action.packet,
                )
            elif isinstance(action, ToController):
                sim.schedule(
                    proc_delay, self.network.send_packet_in,
                    self.name, action.packet,
                )
            elif isinstance(action, Drop):
                self.drops.append((sim.now, action.reason))


class HostNode:
    """An end host: generates and sinks packets on a single access port."""

    def __init__(self, network: "Network", name: str,
                 on_packet: Optional[Callable[[Packet, float], None]] = None):
        self.network = network
        self.name = name
        self.on_packet = on_packet
        self.received: List[Tuple[float, Packet]] = []
        self.sent_count = 0

    def receive(self, packet: Packet, ingress_port: int) -> None:
        self.received.append((self.network.sim.now, packet))
        if self.on_packet is not None:
            self.on_packet(packet, self.network.sim.now)

    def send(self, packet: Packet, port: int = 1,
             charge_host_cost: bool = True) -> None:
        """Transmit a packet out of the host's access port."""
        delay = self.network.costs.host_fixed_s if charge_host_cost else 0.0
        self.sent_count += 1
        self.network.sim.schedule(
            delay, self.network.transmit, self.name, port, packet
        )


class Network:
    """Nodes + links + control channels, bound to an event simulator."""

    def __init__(self, sim: EventSimulator, costs: Optional[CostModel] = None,
                 jitter_seed: int = 0x7177E4):
        self.sim = sim
        self.costs = costs or CostModel()
        self._jitter_prng = XorShiftPrng(jitter_seed)
        self.nodes: Dict[str, object] = {}
        self._links: Dict[Tuple[str, int], Link] = {}
        self.links: List[Link] = []
        self.control_channels: Dict[str, ControlChannel] = {}
        self.controller = None  # set by attach_controller
        self.port_status_listeners: List[Callable[[str, int, bool], None]] = []

    # -- construction ---------------------------------------------------------

    def add_switch(self, switch: DataplaneSwitch) -> SwitchNode:
        if switch.name in self.nodes:
            raise ValueError(f"node {switch.name!r} already exists")
        node = SwitchNode(self, switch)
        self.nodes[switch.name] = node
        self.control_channels[switch.name] = ControlChannel(
            switch.name, self.costs.cdp_one_way_s
        )
        return node

    def add_host(self, name: str,
                 on_packet: Optional[Callable[[Packet, float], None]] = None
                 ) -> HostNode:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = HostNode(self, name, on_packet)
        self.nodes[name] = node
        return node

    def connect(self, name_a: str, port_a: int, name_b: str, port_b: int,
                latency_s: Optional[float] = None,
                bandwidth_bps: float = 10e9) -> Link:
        """Wire two node ports together with a link."""
        for name, port in ((name_a, port_a), (name_b, port_b)):
            if name not in self.nodes:
                raise KeyError(f"unknown node {name!r}")
            if (name, port) in self._links:
                raise ValueError(f"port {port} on {name!r} is already wired")
        link = Link(
            (name_a, port_a), (name_b, port_b),
            latency_s if latency_s is not None else self.costs.link_latency_s,
            bandwidth_bps,
        )
        self._links[(name_a, port_a)] = link
        self._links[(name_b, port_b)] = link
        self.links.append(link)
        return link

    def link_between(self, name_a: str, name_b: str) -> Link:
        """Find the (first) link joining two named nodes."""
        for link in self.links:
            names = {link.end_a[0], link.end_b[0]}
            if names == {name_a, name_b}:
                return link
        raise KeyError(f"no link between {name_a!r} and {name_b!r}")

    def link_at(self, name: str, port: int) -> Link:
        if (name, port) not in self._links:
            raise KeyError(f"no link at ({name!r}, {port})")
        return self._links[(name, port)]

    def attach_controller(self, controller) -> None:
        """Bind the (single, logical) controller.

        The controller object must expose
        ``handle_packet_in(switch_name, packet)``.
        """
        self.controller = controller

    def switch(self, name: str) -> DataplaneSwitch:
        node = self.nodes[name]
        if not isinstance(node, SwitchNode):
            raise TypeError(f"node {name!r} is not a switch")
        return node.switch

    def switch_names(self) -> List[str]:
        return [n for n, node in self.nodes.items() if isinstance(node, SwitchNode)]

    # -- data-plane delivery ------------------------------------------------------

    def transmit(self, from_name: str, port: int, packet: Packet) -> None:
        """Put a packet on the wire out of (from_name, port)."""
        key = (from_name, port)
        if key not in self._links:
            return  # unwired port: packet falls off the edge (like real HW)
        link = self._links[key]
        if not link.up:
            return
        direction = link.direction_from(from_name, port)
        survivor = link.transit(packet, direction)
        if survivor is None:
            return
        peer_name, peer_port = link.peer_of(from_name, port)
        delay = link.transmit_delay(survivor.size_bytes, direction,
                                    self.sim.now)
        peer = self.nodes[peer_name]
        self.sim.schedule(delay, peer.receive, survivor, peer_port)

    def jittered(self, delay: float) -> float:
        """Apply the cost model's uniform relative jitter (seeded)."""
        fraction = self.costs.jitter_fraction
        if fraction <= 0:
            return delay
        return delay * (1.0 + fraction * (2.0 * self._jitter_prng.uniform()
                                          - 1.0))

    # -- control-plane delivery (PacketOut / PacketIn) ----------------------------

    def send_packet_out(self, switch_name: str, packet: Packet) -> None:
        """Controller -> switch data plane, through the untrusted OS."""
        channel = self.control_channels[switch_name]
        survivor = channel.transit(packet, "c->dp")
        if survivor is None:
            return
        node = self.nodes[switch_name]
        self.sim.schedule(
            self.jittered(channel.latency_s), node.receive, survivor,
            DataplaneSwitch.CPU_PORT,
        )

    def send_packet_in(self, switch_name: str, packet: Packet) -> None:
        """Switch data plane -> controller, through the untrusted OS."""
        if self.controller is None:
            return
        channel = self.control_channels[switch_name]
        survivor = channel.transit(packet, "dp->c")
        if survivor is None:
            return
        self.sim.schedule(
            self.jittered(channel.latency_s) + self.costs.controller_proc_s,
            self.controller.handle_packet_in, switch_name, survivor,
        )

    # -- topology events -----------------------------------------------------------

    def set_link_up(self, link: Link, up: bool) -> None:
        """Flip a link's status and notify listeners (LLDP-style events)."""
        link.up = up
        for name, port in (link.end_a, link.end_b):
            if isinstance(self.nodes.get(name), SwitchNode):
                for listener in self.port_status_listeners:
                    listener(name, port, up)

    def on_port_status(self, listener: Callable[[str, int, bool], None]) -> None:
        """Subscribe to port up/down events (the controller's LLDP feed)."""
        self.port_status_listeners.append(listener)

    def neighbor_ports(self, switch_name: str) -> Dict[int, Tuple[str, int]]:
        """Map of local port -> (peer switch, peer port), switches only."""
        result: Dict[int, Tuple[str, int]] = {}
        for (name, port), link in self._links.items():
            if name != switch_name:
                continue
            peer_name, peer_port = link.peer_of(name, port)
            if isinstance(self.nodes.get(peer_name), SwitchNode):
                result[port] = (peer_name, peer_port)
        return result
