"""The simulated network: nodes, wiring, and message delivery.

:class:`Network` owns the switch/host nodes, the links between data-plane
ports, and one control channel per switch toward a single logical
controller.  It translates pipeline actions (Emit/ToController/Drop) into
scheduled events, charging the cost model for switch processing (including
per-digest costs, measured as hash-extern invocation deltas) and link
delays.

Every way a packet can vanish — unwired port, downed link, tap (MitM)
kill, missing controller — increments a named drop counter and emits a
``packet.drop`` trace event.  Forwarding accountability is a security
primitive here (SDNsec): nothing disappears without a reason on record.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import Drop, Emit, ToController
from repro.dataplane.switch import DataplaneSwitch
from repro.crypto.prng import XorShiftPrng
from repro.net.costs import CostModel
from repro.net.links import ControlChannel, Link
from repro.net.simulator import EventSimulator

#: Drop reasons the network layer can record (DESIGN.md "Observability").
DROP_UNWIRED_PORT = "unwired_port"
DROP_LINK_DOWN = "link_down"
DROP_TAP = "tamper_tap"
DROP_CONTROL_TAP = "control_tamper_tap"
DROP_NO_CONTROLLER = "no_controller"
DROP_NODE_DOWN = "node_down"
DROP_FAULT_INJECTED = "fault_injected"

#: A delivery shaper decides how a packet that survived the tap chain
#: actually arrives: it returns a list of ``(packet, delay_s)`` deliveries
#: (empty = injected loss, two entries = duplication, inflated delay =
#: reorder/jitter).  ``repro.faults.FaultInjector`` installs one; the
#: default ``None`` keeps the exact pre-fault behavior.
DeliveryShaper = Callable[["Link", str, Packet, float],
                          List[Tuple[Packet, float]]]


class SwitchNode:
    """A data-plane switch attached to the network fabric."""

    def __init__(self, network: "Network", switch: DataplaneSwitch):
        self.network = network
        self.switch = switch
        self.name = switch.name
        self.drops: List[Tuple[float, str]] = []
        #: Crash state: a downed switch eats every arriving packet (with a
        #: named drop reason).  Flipped by node faults (repro.faults).
        self.up = True
        #: Clock skew the node fault layer can impose: the switch's local
        #: view of time is ``sim.now + clock_skew_s`` (a KMP peer with a
        #: drifting oscillator).
        self.clock_skew_s = 0.0
        metrics = network.telemetry.metrics
        self._packets_counter = metrics.counter(
            "net_switch_packets_total", switch=self.name)
        self._hash_counter = metrics.counter(
            "dataplane_hash_ops_total", switch=self.name)

    def receive(self, packet: Packet, ingress_port: int) -> None:
        """Handle an arriving packet: run the pipeline, schedule outcomes."""
        sim = self.network.sim
        costs = self.network.costs
        if not self.up:
            self.network.count_drop(DROP_NODE_DOWN, self.name, ingress_port)
            return
        hash_before = self.switch.hash.invocations
        actions = self.switch.process(packet, ingress_port,
                                      now=sim.now + self.clock_skew_s)
        hash_ops = self.switch.hash.invocations - hash_before
        self._packets_counter.inc()
        if hash_ops:
            self._hash_counter.inc(hash_ops)
        proc_delay = costs.switch_fwd_s + hash_ops * costs.digest_op_s
        for action in actions:
            if isinstance(action, Emit):
                sim.schedule(
                    proc_delay, self.network.transmit, self.name,
                    action.port, action.packet,
                )
            elif isinstance(action, ToController):
                sim.schedule(
                    proc_delay, self.network.send_packet_in,
                    self.name, action.packet,
                )
            elif isinstance(action, Drop):
                self.drops.append((sim.now, action.reason))


class HostNode:
    """An end host: generates and sinks packets on a single access port."""

    def __init__(self, network: "Network", name: str,
                 on_packet: Optional[Callable[[Packet, float], None]] = None):
        self.network = network
        self.name = name
        self.on_packet = on_packet
        self.received: List[Tuple[float, Packet]] = []
        self.sent_count = 0

    def receive(self, packet: Packet, ingress_port: int) -> None:
        self.received.append((self.network.sim.now, packet))
        if self.on_packet is not None:
            self.on_packet(packet, self.network.sim.now)

    def send(self, packet: Packet, port: int = 1,
             charge_host_cost: bool = True) -> None:
        """Transmit a packet out of the host's access port."""
        delay = self.network.costs.host_fixed_s if charge_host_cost else 0.0
        self.sent_count += 1
        self.network.sim.schedule(
            delay, self.network.transmit, self.name, port, packet
        )


class Network:
    """Nodes + links + control channels, bound to an event simulator."""

    def __init__(self, sim: EventSimulator, costs: Optional[CostModel] = None,
                 jitter_seed: int = 0x7177E4):
        self.sim = sim
        self.telemetry = sim.telemetry
        self.costs = costs or CostModel()
        self._jitter_prng = XorShiftPrng(jitter_seed)
        self.nodes: Dict[str, object] = {}
        self._links: Dict[Tuple[str, int], Link] = {}
        self.links: List[Link] = []
        self.control_channels: Dict[str, ControlChannel] = {}
        self.controller = None  # set by attach_controller
        #: Optional fault-injection delivery shaper (see DeliveryShaper).
        self.delivery_shaper: Optional[DeliveryShaper] = None
        self.port_status_listeners: List[Callable[[str, int, bool], None]] = []
        #: Drop tally by reason — populated by every formerly silent
        #: drop path; always on (it is just a dict increment).
        self.drop_counts: Dict[str, int] = {}
        # Per-(node, port) cached telemetry counters, built in connect().
        self._link_counters: Dict[Tuple[str, int], Tuple[object, object]] = {}

    # -- construction ---------------------------------------------------------

    def add_switch(self, switch: DataplaneSwitch) -> SwitchNode:
        if switch.name in self.nodes:
            raise ValueError(f"node {switch.name!r} already exists")
        # Switches created standalone default to the null telemetry; wire
        # them to the fabric's instance so pipeline/auth instrumentation
        # reports into the same registry.
        if self.telemetry.enabled and not switch.telemetry.enabled:
            switch.telemetry = self.telemetry
        node = SwitchNode(self, switch)
        self.nodes[switch.name] = node
        self.control_channels[switch.name] = ControlChannel(
            switch.name, self.costs.cdp_one_way_s
        )
        return node

    def add_node(self, name: str, node) -> object:
        """Register a custom node (anything exposing ``receive(packet,
        ingress_port)``).  Region gateways use this: they take part in the
        fabric wiring without being switches, so switch-only surfaces
        (``neighbor_ports``, ``switch_names``, KMP keying) ignore them."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        if not callable(getattr(node, "receive", None)):
            raise TypeError(f"node {name!r} must expose receive()")
        self.nodes[name] = node
        return node

    def add_host(self, name: str,
                 on_packet: Optional[Callable[[Packet, float], None]] = None
                 ) -> HostNode:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = HostNode(self, name, on_packet)
        self.nodes[name] = node
        return node

    def connect(self, name_a: str, port_a: int, name_b: str, port_b: int,
                latency_s: Optional[float] = None,
                bandwidth_bps: float = 10e9) -> Link:
        """Wire two node ports together with a link."""
        for name, port in ((name_a, port_a), (name_b, port_b)):
            if name not in self.nodes:
                raise KeyError(f"unknown node {name!r}")
            if (name, port) in self._links:
                raise ValueError(f"port {port} on {name!r} is already wired")
        link = Link(
            (name_a, port_a), (name_b, port_b),
            latency_s if latency_s is not None else self.costs.link_latency_s,
            bandwidth_bps,
        )
        self._links[(name_a, port_a)] = link
        self._links[(name_b, port_b)] = link
        self.links.append(link)
        metrics = self.telemetry.metrics
        for (name, port), direction in ((link.end_a, "a->b"),
                                        (link.end_b, "b->a")):
            self._link_counters[(name, port)] = (
                metrics.counter("net_link_packets_total", link=link.label,
                                direction=direction),
                metrics.counter("net_link_bytes_total", link=link.label,
                                direction=direction),
            )
        return link

    def link_between(self, name_a: str, name_b: str) -> Link:
        """Find the (first) link joining two named nodes."""
        for link in self.links:
            names = {link.end_a[0], link.end_b[0]}
            if names == {name_a, name_b}:
                return link
        raise KeyError(f"no link between {name_a!r} and {name_b!r}")

    def link_at(self, name: str, port: int) -> Link:
        if (name, port) not in self._links:
            raise KeyError(f"no link at ({name!r}, {port})")
        return self._links[(name, port)]

    def attach_controller(self, controller) -> None:
        """Bind the (single, logical) controller.

        The controller object must expose
        ``handle_packet_in(switch_name, packet)``.
        """
        self.controller = controller

    def switch(self, name: str) -> DataplaneSwitch:
        node = self.nodes[name]
        if not isinstance(node, SwitchNode):
            raise TypeError(f"node {name!r} is not a switch")
        return node.switch

    def switch_names(self) -> List[str]:
        return [n for n, node in self.nodes.items() if isinstance(node, SwitchNode)]

    # -- drop accounting ----------------------------------------------------------

    def count_drop(self, reason: str, node: str, port: int = -1) -> None:
        """Record a packet loss with a named reason (never silent)."""
        self.drop_counts[reason] = self.drop_counts.get(reason, 0) + 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter("net_dropped_packets_total",
                                      reason=reason, node=node).inc()
            telemetry.tracer.emit("packet.drop", layer="net", reason=reason,
                                  node=node, port=port)

    # -- data-plane delivery ------------------------------------------------------

    def transmit(self, from_name: str, port: int, packet: Packet) -> None:
        """Put a packet on the wire out of (from_name, port)."""
        key = (from_name, port)
        if key not in self._links:
            # Unwired port: the packet falls off the edge (like real HW),
            # but the fall is on record.
            self.count_drop(DROP_UNWIRED_PORT, from_name, port)
            return
        link = self._links[key]
        if not link.up:
            self.count_drop(DROP_LINK_DOWN, from_name, port)
            return
        direction = link.direction_from(from_name, port)
        survivor = link.transit(packet, direction)
        if survivor is None:
            self.count_drop(DROP_TAP, from_name, port)
            return
        packets_counter, bytes_counter = self._link_counters[key]
        packets_counter.inc()
        bytes_counter.inc(survivor.size_bytes)
        peer_name, peer_port = link.peer_of(from_name, port)
        delay = link.transmit_delay(survivor.size_bytes, direction,
                                    self.sim.now)
        peer = self.nodes[peer_name]
        if self.delivery_shaper is None:
            self.sim.schedule(delay, peer.receive, survivor, peer_port)
            return
        deliveries = self.delivery_shaper(link, direction, survivor, delay)
        if not deliveries:
            self.count_drop(DROP_FAULT_INJECTED, from_name, port)
            return
        for shaped_packet, shaped_delay in deliveries:
            self.sim.schedule(shaped_delay, peer.receive, shaped_packet,
                              peer_port)

    def jittered(self, delay: float) -> float:
        """Apply the cost model's uniform relative jitter (seeded)."""
        fraction = self.costs.jitter_fraction
        if fraction <= 0:
            return delay
        return delay * (1.0 + fraction * (2.0 * self._jitter_prng.uniform()
                                          - 1.0))

    # -- control-plane delivery (PacketOut / PacketIn) ----------------------------

    def send_packet_out(self, switch_name: str, packet: Packet) -> None:
        """Controller -> switch data plane, through the untrusted OS."""
        channel = self.control_channels[switch_name]
        survivor = channel.transit(packet, "c->dp")
        if survivor is None:
            self.count_drop(DROP_CONTROL_TAP, switch_name)
            return
        node = self.nodes[switch_name]
        self.sim.schedule(
            self.jittered(channel.latency_s), node.receive, survivor,
            DataplaneSwitch.CPU_PORT,
        )

    def send_packet_in(self, switch_name: str, packet: Packet) -> None:
        """Switch data plane -> controller, through the untrusted OS."""
        if self.controller is None:
            self.count_drop(DROP_NO_CONTROLLER, switch_name)
            return
        channel = self.control_channels[switch_name]
        survivor = channel.transit(packet, "dp->c")
        if survivor is None:
            self.count_drop(DROP_CONTROL_TAP, switch_name)
            return
        self.sim.schedule(
            self.jittered(channel.latency_s) + self.costs.controller_proc_s,
            self.controller.handle_packet_in, switch_name, survivor,
        )

    # -- topology events -----------------------------------------------------------

    def set_link_up(self, link: Link, up: bool) -> None:
        """Flip a link's status and notify listeners (LLDP-style events)."""
        link.up = up
        telemetry = self.telemetry
        if telemetry.enabled:
            state = "up" if up else "down"
            telemetry.metrics.counter("net_link_transitions_total",
                                      link=link.label, state=state).inc()
            telemetry.tracer.emit(f"link.{state}", link=link.label)
        for name, port in (link.end_a, link.end_b):
            if isinstance(self.nodes.get(name), SwitchNode):
                for listener in self.port_status_listeners:
                    listener(name, port, up)

    def on_port_status(self, listener: Callable[[str, int, bool], None]) -> None:
        """Subscribe to port up/down events (the controller's LLDP feed)."""
        self.port_status_listeners.append(listener)

    def neighbor_ports(self, switch_name: str) -> Dict[int, Tuple[str, int]]:
        """Map of local port -> (peer switch, peer port), switches only."""
        result: Dict[int, Tuple[str, int]] = {}
        for (name, port), link in self._links.items():
            if name != switch_name:
                continue
            peer_name, peer_port = link.peer_of(name, port)
            if isinstance(self.nodes.get(peer_name), SwitchNode):
                result[port] = (peer_name, peer_port)
        return result
