"""Discrete event-driven network substrate.

Replaces the paper's physical testbed (Tofino switch, PTF generator, BMv2
mininet) with a simulated network: a heap-based event scheduler, links
with propagation latency and taps (where on-link MitM adversaries attach),
switch/host/controller nodes, and a calibrated cost model whose constants
are documented in DESIGN.md.
"""

from repro.net.simulator import EventSimulator
from repro.net.costs import CostModel
from repro.net.links import Link, ControlChannel
from repro.net.network import Network, SwitchNode, HostNode
from repro.net.topology import (
    linear_chain,
    hula_fig3_topology,
    leaf_spine,
)
from repro.net.trace import TraceGenerator, Flow

__all__ = [
    "EventSimulator",
    "CostModel",
    "Link",
    "ControlChannel",
    "Network",
    "SwitchNode",
    "HostNode",
    "linear_chain",
    "hula_fig3_topology",
    "leaf_spine",
    "TraceGenerator",
    "Flow",
]
