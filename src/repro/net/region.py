"""Region-sharded simulation: N per-region worlds in bounded-lag lockstep.

A :class:`Region` owns its own :class:`~repro.net.simulator.EventSimulator`
and :class:`~repro.net.network.Network`, so a 10k-switch fabric is never
one giant event heap.  Regions are joined by *boundary links*: inside the
source region the link terminates at a :class:`RegionGateway` node that
stands in for the remote switch, and the gateway forwards arriving
packets through the :class:`InterRegionMailbox`.

Correctness rests on the classic conservative-parallel-DES argument:

- every boundary link carries ``latency_s`` >= the lockstep epoch
  ``epoch_s`` (the *lookahead*), so a packet posted during epoch
  ``[t, t+e)`` is delivered at ``>= t+e`` — never into a destination
  region's past;
- regions advance one epoch at a time in sorted-region-id order, and the
  mailbox flushes between epochs in ``(deliver_at, src_region, seq)``
  order, so delivery is a pure function of the schedule and the whole
  world stays bit-reproducible for any region count.

With one region and no boundary links, :meth:`RegionalWorld.run` is a
plain pass-through to the single simulator — the regions=1 world is the
*same* world, byte for byte, as the pre-region flat one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dataplane.packet import Packet
from repro.net.network import Network
from repro.net.simulator import EventSimulator

#: Default boundary-link propagation delay (inter-region / WAN-ish, well
#: above the 5 µs intra-region link latency).  It doubles as the default
#: lockstep epoch, so the lookahead invariant holds by construction.
DEFAULT_BOUNDARY_LATENCY_S = 500e-6


@dataclass(frozen=True)
class BoundaryLink:
    """One inter-region link, described from both ends."""

    region_a: str
    switch_a: str
    port_a: int
    region_b: str
    switch_b: str
    port_b: int
    latency_s: float

    def end_in(self, region_id: str) -> Tuple[str, int]:
        if region_id == self.region_a:
            return self.switch_a, self.port_a
        if region_id == self.region_b:
            return self.switch_b, self.port_b
        raise KeyError(f"{region_id!r} is not an endpoint of {self}")


@dataclass
class Region:
    """One partition of the fleet: its own simulator, network, switches."""

    id: str
    index: int
    sim: EventSimulator
    net: Network
    switches: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.net.sim is not self.sim:
            raise ValueError(f"region {self.id!r}: network is bound to a "
                             f"different simulator")


class RegionGateway:
    """In-region stand-in for a switch that lives in another region.

    It satisfies the network node interface (``receive``); anything the
    fabric delivers to it is posted to the world mailbox stamped
    ``deliver_at = now + latency_s``.  Gateways are *not*
    ``SwitchNode``s, so ``Network.neighbor_ports`` (and therefore KMP
    port keying) never sees boundary ports — inter-region links are
    inter-domain links and carry no port keys (see DESIGN.md).
    """

    def __init__(self, world: "RegionalWorld", name: str, src_region: Region,
                 dst_region: str, dst_switch: str, dst_port: int,
                 latency_s: float):
        self.world = world
        self.name = name
        self.src_region = src_region
        self.dst_region = dst_region
        self.dst_switch = dst_switch
        self.dst_port = dst_port
        self.latency_s = latency_s
        self.forwarded = 0

    def receive(self, packet: Packet, ingress_port: int) -> None:
        self.forwarded += 1
        self.world.mailbox.post(
            src_index=self.src_region.index,
            dst_region=self.dst_region,
            dst_switch=self.dst_switch,
            dst_port=self.dst_port,
            packet=packet,
            deliver_at=self.src_region.sim.now + self.latency_s,
        )


class InterRegionMailbox:
    """Deterministic cross-region message queue.

    Posts accumulate during an epoch; :meth:`flush` sorts them by
    ``(deliver_at, src_region_index, seq)`` and schedules each into the
    destination region's simulator.  The sort (plus each simulator's own
    FIFO tie-break) makes delivery order independent of which region ran
    first inside the epoch.
    """

    def __init__(self) -> None:
        self._seq = itertools.count()
        self._pending: List[Tuple[float, int, int, str, str, int, Packet]] = []
        self.posted = 0
        self.delivered = 0
        #: Deepest the pending queue has been at any flush.
        self.high_water = 0

    def post(self, src_index: int, dst_region: str, dst_switch: str,
             dst_port: int, packet: Packet, deliver_at: float) -> None:
        self.posted += 1
        self._pending.append((deliver_at, src_index, next(self._seq),
                              dst_region, dst_switch, dst_port, packet))

    def flush(self, regions: Dict[str, Region]) -> int:
        if len(self._pending) > self.high_water:
            self.high_water = len(self._pending)
        batch = sorted(self._pending, key=lambda e: e[:3])
        self._pending.clear()
        for deliver_at, _src, _seq, rid, switch, port, packet in batch:
            region = regions[rid]
            if deliver_at < region.sim.now:
                raise RuntimeError(
                    f"lookahead violation: message for {switch!r} in region "
                    f"{rid!r} due at {deliver_at} but the region is already "
                    f"at {region.sim.now} — boundary latency must be >= the "
                    f"lockstep epoch")
            node = region.net.nodes[switch]
            region.sim.schedule_at(deliver_at, node.receive, packet, port)
        self.delivered += len(batch)
        return len(batch)

    def pending(self) -> int:
        return len(self._pending)


class RegionalWorld:
    """N regions advancing in bounded-lag lockstep.

    ``run(until)`` slices virtual time into epochs of ``epoch_s`` (default:
    the minimum boundary-link latency), runs every region — sorted by
    region id — up to the epoch boundary, then flushes the mailbox.
    ``on_epoch`` hooks fire at each barrier with the barrier time; the
    hierarchical KMP uses them to check cross-region invariants at
    points where all regions agree on the clock.
    """

    def __init__(self, regions: List[Region],
                 epoch_s: Optional[float] = None):
        if not regions:
            raise ValueError("need at least one region")
        ids = [r.id for r in regions]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate region ids: {ids}")
        self.regions: List[Region] = sorted(regions, key=lambda r: r.id)
        self.by_id: Dict[str, Region] = {r.id: r for r in self.regions}
        self.mailbox = InterRegionMailbox()
        self.boundary_links: List[BoundaryLink] = []
        self.on_epoch: List[Callable[[float], None]] = []
        self.epochs = 0
        self._explicit_epoch_s = epoch_s
        self._gateway_count = 0
        now = {r.id: r.sim.now for r in self.regions}
        if len(set(now.values())) > 1:
            raise ValueError(f"regions disagree on the clock: {now}")

    # -- construction ------------------------------------------------------

    def add_boundary_link(self, region_a: str, switch_a: str, port_a: int,
                          region_b: str, switch_b: str, port_b: int,
                          latency_s: float = DEFAULT_BOUNDARY_LATENCY_S,
                          bandwidth_bps: float = 10e9) -> BoundaryLink:
        """Join two switches in different regions through gateways."""
        if region_a == region_b:
            raise ValueError("boundary link endpoints must differ in region")
        if latency_s <= 0:
            raise ValueError("boundary latency must be positive")
        if (self._explicit_epoch_s is not None
                and latency_s < self._explicit_epoch_s):
            raise ValueError(
                f"boundary latency {latency_s} < lockstep epoch "
                f"{self._explicit_epoch_s}: the lookahead invariant needs "
                f"latency >= epoch")
        link = BoundaryLink(region_a, switch_a, port_a,
                            region_b, switch_b, port_b, latency_s)
        for src_id, src_switch, src_port, dst_id, dst_switch, dst_port in (
                (region_a, switch_a, port_a, region_b, switch_b, port_b),
                (region_b, switch_b, port_b, region_a, switch_a, port_a)):
            src = self.by_id[src_id]
            gw_name = f"{src_id}.gw{self._gateway_count}"
            self._gateway_count += 1
            gateway = RegionGateway(self, gw_name, src, dst_id, dst_switch,
                                    dst_port, latency_s)
            src.net.add_node(gw_name, gateway)
            # The in-region hop to the gateway is free; the *mailbox*
            # charges the full boundary latency, so the delivery time of a
            # packet posted during epoch [t, t+e) is >= t + latency >= t+e.
            src.net.connect(src_switch, src_port, gw_name, 1,
                            latency_s=0.0, bandwidth_bps=bandwidth_bps)
        self.boundary_links.append(link)
        return link

    # -- time --------------------------------------------------------------

    @property
    def epoch_s(self) -> float:
        if self._explicit_epoch_s is not None:
            return self._explicit_epoch_s
        if self.boundary_links:
            return min(link.latency_s for link in self.boundary_links)
        return DEFAULT_BOUNDARY_LATENCY_S

    @property
    def now(self) -> float:
        return self.regions[0].sim.now

    def region(self, region_id: str) -> Region:
        return self.by_id[region_id]

    # -- execution ---------------------------------------------------------

    def run(self, until: float,
            max_events_per_epoch: int = 10_000_000) -> int:
        """Advance every region to ``until`` (absolute virtual time)."""
        if len(self.regions) == 1 and not self.boundary_links:
            # Single region: the lockstep machinery is pure overhead and
            # the flat world must stay byte-identical — pass through.
            return self.regions[0].sim.run(until=until,
                                           max_events=max_events_per_epoch)
        executed = 0
        epoch = self.epoch_s
        while self.now < until - 1e-15:
            barrier = min(self.now + epoch, until)
            for region in self.regions:
                executed += region.sim.run(until=barrier,
                                           max_events=max_events_per_epoch)
            self.mailbox.flush(self.by_id)
            self.epochs += 1
            for hook in list(self.on_epoch):
                hook(barrier)
        return executed

    def run_until(self, condition: Callable[[], bool], deadline: float,
                  max_events_per_epoch: int = 10_000_000) -> bool:
        """Run epoch by epoch until ``condition()`` or the deadline.

        Returns whether the condition held when the loop stopped.  The
        condition is only sampled at epoch barriers (where all regions
        agree on the clock), so the check itself cannot perturb the
        schedule.
        """
        if condition():
            return True
        epoch = self.epoch_s
        while self.now < deadline - 1e-15:
            self.run(until=min(self.now + epoch, deadline),
                     max_events_per_epoch=max_events_per_epoch)
            if condition():
                return True
        return condition()

    def pending(self) -> int:
        """Events queued across all regions plus unflushed mailbox posts."""
        return (sum(r.sim.pending() for r in self.regions)
                + self.mailbox.pending())

    def stats(self) -> Dict[str, object]:
        return {
            "regions": len(self.regions),
            "boundary_links": len(self.boundary_links),
            "epochs": self.epochs,
            "epoch_s": self.epoch_s,
            "mailbox_posted": self.mailbox.posted,
            "mailbox_delivered": self.mailbox.delivered,
            "mailbox_high_water": self.mailbox.high_water,
            "events_executed": sum(r.sim.events_executed
                                   for r in self.regions),
        }


__all__ = [
    "DEFAULT_BOUNDARY_LATENCY_S",
    "BoundaryLink",
    "InterRegionMailbox",
    "Region",
    "RegionGateway",
    "RegionalWorld",
]
