"""Calibrated timing constants for the simulation.

The paper reports wall-clock measurements from a Tofino testbed and BMv2;
we reproduce the *shapes* of those measurements with the constants below.
Every constant's calibration rationale is documented here and in DESIGN.md;
the benchmark suite asserts the resulting shapes (who wins, rough factors,
crossovers), not absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """All timing constants, in seconds.

    Attributes
    ----------
    cdp_one_way_s:
        Controller-to-data-plane one-way latency (PCIe/gRPC transport plus
        kernel path).  350 µs makes a 4-message local key init land at
        ~1.5 ms and a 5-message port key init at ~1.9 ms, matching Fig 20's
        1-2 ms band and ordering.
    switch_fwd_s:
        Per-switch forwarding cost (BMv2 software switch scale, ~50 µs).
    link_latency_s:
        Per-link propagation delay between adjacent switches.
    host_fixed_s:
        Fixed end-host stack cost charged once per probe/flow send.  Large
        relative to per-hop costs, which is what makes Fig 21's relative
        P4Auth overhead grow near-linearly in hop count.
    digest_op_s:
        One data-plane digest computation or verification.  4.4 µs makes
        the HULA probe overhead +0.97% at 2 hops and +5.9% at 10 hops
        (paper: 0.95% and 5.9%).
    controller_digest_s:
        One controller-side (Python) digest computation or verification.
    compose_read_s / compose_write_s:
        Controller-side request marshaling.  Write composes both the index
        and the data, which is the paper's explanation for P4Runtime's
        read throughput being 1.7x its write throughput.
    p4runtime_overhead_s:
        Extra per-request cost of the gRPC + P4Runtime server stack,
        absent from the PacketOut-based stacks.
    controller_proc_s:
        Generic controller event-handling cost (parse, dispatch).
    """

    cdp_one_way_s: float = 350e-6
    switch_fwd_s: float = 50e-6
    link_latency_s: float = 5e-6
    host_fixed_s: float = 790e-6
    digest_op_s: float = 4.4e-6
    controller_digest_s: float = 15e-6
    compose_read_s: float = 120e-6
    compose_write_s: float = 792e-6
    p4runtime_overhead_s: float = 60e-6
    controller_proc_s: float = 30e-6
    #: Relative uniform jitter applied to C-DP transit and switch
    #: processing (0 = fully deterministic).  With jitter the Fig 18 RCT
    #: measurement becomes a distribution, like the paper's CDF.
    jitter_fraction: float = 0.0

    def bandwidth_delay(self, size_bytes: int,
                        bandwidth_bps: float = 10e9) -> float:
        """Serialization delay of a packet at the given line rate."""
        return size_bytes * 8.0 / bandwidth_bps
