from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of P4Auth (DSN 2025)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
)
